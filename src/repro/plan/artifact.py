"""The deployment-plan artifact.

A :class:`DeploymentPlan` captures both sets of decision variables from
§V-A — ``x(a, i, u)`` as per-MAT :class:`MatPlacement` records (which
switch, which stages) and ``y(u, v, p)`` as the routing map from
ordered switch pairs to chosen paths — together with validation and the
metrics the evaluation reports: the per-packet byte overhead ``A_max``,
end-to-end latency ``t_e2e`` and occupied switch count ``Q_occ``.

The plan is an *immutable artifact*: once constructed, its placements
and routing never change, so every derived metric is computed once and
cached.  Code that needs to edit a plan goes through the mutable
:class:`repro.plan.builder.PlanBuilder`, which maintains the same
metrics incrementally (O(Δ) per move instead of O(E) per query) and
emits a fresh plan via :meth:`~repro.plan.builder.PlanBuilder.build`.
Plans serialize to a canonical, versioned JSON document
(:meth:`DeploymentPlan.to_dict` / :meth:`DeploymentPlan.from_dict`; see
:mod:`repro.plan.serialize`) and compare structurally via
:func:`repro.plan.diff.diff_plans`.

Compatibility: the historical constructor signature
``DeploymentPlan(tdg, network, placements, routing)`` is unchanged, and
assigning ``plan.routing`` still works as a deprecated shim for one
release — new code should use :meth:`with_routing` or a builder.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from repro.network.paths import Path
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class DeploymentError(ValueError):
    """Raised when a deployment request cannot be satisfied."""


@dataclass(frozen=True)
class MatPlacement:
    """Where one MAT landed: switch ``u`` and stage numbers ``i``.

    ``stages`` is the sorted tuple of (1-based) stage indices the MAT
    occupies; a MAT whose demand exceeds one stage's capacity spans
    several consecutive stages.
    """

    mat_name: str
    switch: str
    stages: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"MAT {self.mat_name!r} placed on no stages")
        if list(self.stages) != sorted(self.stages):
            raise ValueError(f"stages must be sorted: {self.stages}")
        if self.stages[0] < 1:
            raise ValueError("stage indices are 1-based")

    @property
    def first_stage(self) -> int:
        """``rho_begin`` — the first stage running (part of) the MAT."""
        return self.stages[0]

    @property
    def last_stage(self) -> int:
        """``rho_end`` — the last stage running (part of) the MAT."""
        return self.stages[-1]


#: Attributes the lazy metric caches may write after construction.
_CACHE_SLOTS = frozenset(
    {
        "_pair_bytes_cache",
        "_amax_cache",
        "_total_bytes_cache",
        "_occupied_cache",
        "_e2e_cache",
        "_stage_util_cache",
    }
)


class DeploymentPlan:
    """A complete, immutable network-wide deployment.

    Args:
        tdg: The merged, metadata-annotated TDG that was deployed.
        network: The substrate network.
        placements: Per-MAT placement records (every TDG node exactly
            once).
        routing: Chosen inter-switch paths, keyed by ordered switch
            pair; covers every pair of switches that exchange metadata.
    """

    def __init__(
        self,
        tdg: Tdg,
        network: Network,
        placements: Mapping[str, MatPlacement],
        routing: Optional[Mapping[Tuple[str, str], Path]] = None,
    ) -> None:
        self._tdg = tdg
        self._network = network
        self._placements = dict(placements)
        self._routing = dict(routing or {})
        self._reset_caches()
        self._frozen = True

    def _reset_caches(self) -> None:
        object.__setattr__(self, "_pair_bytes_cache", None)
        object.__setattr__(self, "_amax_cache", None)
        object.__setattr__(self, "_total_bytes_cache", None)
        object.__setattr__(self, "_occupied_cache", None)
        object.__setattr__(self, "_e2e_cache", None)
        object.__setattr__(self, "_stage_util_cache", {})

    # ------------------------------------------------------------------
    # Immutability
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if not getattr(self, "_frozen", False) or name in _CACHE_SLOTS:
            object.__setattr__(self, name, value)
            return
        if name == "routing":
            # One-release shim for the historical mutation pattern
            # ``plan.routing = {...}``; the routing-dependent caches
            # are invalidated, everything placement-derived survives.
            warnings.warn(
                "assigning DeploymentPlan.routing is deprecated; use "
                "plan.with_routing(...) or a PlanBuilder",
                DeprecationWarning,
                stacklevel=2,
            )
            object.__setattr__(self, "_routing", dict(value))
            object.__setattr__(self, "_e2e_cache", None)
            return
        raise AttributeError(
            f"DeploymentPlan is immutable; cannot set {name!r} — edit "
            "through repro.plan.PlanBuilder instead"
        )

    def __reduce__(self):
        return (
            self.__class__,
            (
                self._tdg,
                self._network,
                dict(self._placements),
                dict(self._routing),
            ),
        )

    # ------------------------------------------------------------------
    # Core attributes
    # ------------------------------------------------------------------
    @property
    def tdg(self) -> Tdg:
        return self._tdg

    @property
    def network(self) -> Network:
        return self._network

    @property
    def placements(self) -> Mapping[str, MatPlacement]:
        """Read-only view of the per-MAT placement records."""
        return MappingProxyType(self._placements)

    @property
    def routing(self) -> Mapping[Tuple[str, str], Path]:
        """Read-only view of the chosen inter-switch paths."""
        return MappingProxyType(self._routing)

    def with_routing(
        self, routing: Mapping[Tuple[str, str], Path]
    ) -> "DeploymentPlan":
        """A sibling plan with the same placements and new routing."""
        plan = DeploymentPlan(
            self._tdg, self._network, self._placements, routing
        )
        # Placement-derived caches are identical by construction.
        object.__setattr__(plan, "_pair_bytes_cache", self._pair_bytes_cache)
        object.__setattr__(plan, "_amax_cache", self._amax_cache)
        object.__setattr__(plan, "_total_bytes_cache", self._total_bytes_cache)
        object.__setattr__(plan, "_occupied_cache", self._occupied_cache)
        return plan

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def switch_of(self, mat_name: str) -> str:
        """``L(a, u)``: the switch hosting a MAT."""
        try:
            return self._placements[mat_name].switch
        except KeyError:
            raise KeyError(f"MAT {mat_name!r} is not placed") from None

    def mats_on(self, switch: str) -> List[str]:
        """MAT names hosted by a switch, ordered by first stage."""
        on = [p for p in self._placements.values() if p.switch == switch]
        on.sort(key=lambda p: (p.first_stage, p.mat_name))
        return [p.mat_name for p in on]

    def occupied_switches(self) -> List[str]:
        """Switches hosting at least one MAT, in first-use order."""
        if self._occupied_cache is None:
            seen: List[str] = []
            for placement in self._placements.values():
                if placement.switch not in seen:
                    seen.append(placement.switch)
            self._occupied_cache = seen
        return list(self._occupied_cache)

    # ------------------------------------------------------------------
    # Metrics (§V-B objectives, measured on the finished plan)
    # ------------------------------------------------------------------
    def pair_metadata_bytes(self) -> Dict[Tuple[str, str], int]:
        """Metadata bytes exchanged per ordered switch pair.

        For each TDG edge whose endpoints sit on different switches,
        its ``A(a, b)`` is charged to the (upstream-switch,
        downstream-switch) pair.  Computed once and cached — the plan
        is immutable.
        """
        if self._pair_bytes_cache is None:
            totals: Dict[Tuple[str, str], int] = {}
            for edge in self._tdg.edges:
                u = self.switch_of(edge.upstream)
                v = self.switch_of(edge.downstream)
                if u == v:
                    continue
                key = (u, v)
                totals[key] = totals.get(key, 0) + edge.metadata_bytes
            self._pair_bytes_cache = totals
        return dict(self._pair_bytes_cache)

    def max_metadata_bytes(self) -> int:
        """``A_max`` — the per-packet byte overhead (Obj#1, Eq. 1)."""
        if self._amax_cache is None:
            pairs = self.pair_metadata_bytes()
            self._amax_cache = max(pairs.values()) if pairs else 0
        return self._amax_cache

    def total_metadata_bytes(self) -> int:
        """Total coordination bytes across all switch pairs."""
        if self._total_bytes_cache is None:
            self._total_bytes_cache = sum(
                self.pair_metadata_bytes().values()
            )
        return self._total_bytes_cache

    def num_occupied_switches(self) -> int:
        """``Q_occ`` (Obj#3, Eq. 3)."""
        return len(self.occupied_switches())

    def end_to_end_latency_us(self) -> float:
        """``t_e2e`` — the sum of chosen inter-switch path latencies.

        Each distinct communicating switch pair contributes its routed
        path once (Obj#2, Eq. 2 measured on the realized routing).
        """
        if self._e2e_cache is None:
            total = 0.0
            for pair in self.pair_metadata_bytes():
                path = self._routing.get(pair)
                if path is None:
                    raise DeploymentError(
                        f"switch pair {pair} exchanges metadata but has no "
                        "routed path"
                    )
                total += path.latency_us
            self._e2e_cache = total
        return self._e2e_cache

    def cross_switch_edges(self) -> List[Tuple[str, str]]:
        """TDG edges whose endpoints landed on different switches."""
        return [
            (e.upstream, e.downstream)
            for e in self._tdg.edges
            if self.switch_of(e.upstream) != self.switch_of(e.downstream)
        ]

    def stage_utilization(self, switch: str) -> Dict[int, float]:
        """Per-stage resource load on a switch (stage index -> demand)."""
        cached = self._stage_util_cache.get(switch)
        if cached is None:
            load: Dict[int, float] = {}
            for placement in self._placements.values():
                if placement.switch != switch:
                    continue
                mat = self._tdg.node(placement.mat_name)
                share = mat.resource_demand / len(placement.stages)
                for stage in placement.stages:
                    load[stage] = load.get(stage, 0.0) + share
            self._stage_util_cache[switch] = load
            cached = load
        return dict(cached)

    # ------------------------------------------------------------------
    # Serialization (canonical, versioned JSON — repro.plan.serialize)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The canonical JSON-serializable document for this plan."""
        from repro.plan.serialize import plan_to_dict

        return plan_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DeploymentPlan":
        """Reconstruct a plan from :meth:`to_dict` output."""
        from repro.plan.serialize import plan_from_dict

        return plan_from_dict(data)

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical serialization."""
        from repro.plan.serialize import plan_fingerprint

        return plan_fingerprint(self)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, tol: float = 1e-6) -> None:
        """Check the plan against every paper constraint.

        Raises:
            DeploymentError: Describing the first violated constraint —
                unplaced MATs, non-programmable hosts, stage-capacity
                overflow (Eq. 9), intra-switch ordering (Eq. 8), or
                missing inter-switch routing (Eq. 7).
        """
        self._check_coverage()
        self._check_hosts()
        self._check_stage_capacity(tol)
        self._check_intra_switch_order()
        self._check_routing()

    def _check_coverage(self) -> None:
        placed = set(self._placements)
        nodes = set(self._tdg.node_names)
        missing = nodes - placed
        if missing:
            raise DeploymentError(f"unplaced MATs: {sorted(missing)}")
        extra = placed - nodes
        if extra:
            raise DeploymentError(f"placements for unknown MATs: {sorted(extra)}")

    def _check_hosts(self) -> None:
        for placement in self._placements.values():
            switch = self._network.switch(placement.switch)
            if not switch.programmable:
                raise DeploymentError(
                    f"MAT {placement.mat_name!r} placed on non-programmable "
                    f"switch {switch.name!r}"
                )
            if placement.last_stage > switch.num_stages:
                raise DeploymentError(
                    f"MAT {placement.mat_name!r} uses stage "
                    f"{placement.last_stage} but switch {switch.name!r} "
                    f"has only {switch.num_stages}"
                )

    def _check_stage_capacity(self, tol: float) -> None:
        for switch_name in self.occupied_switches():
            capacity = self._network.switch(switch_name).stage_capacity
            for stage, load in self.stage_utilization(switch_name).items():
                if load > capacity + tol:
                    raise DeploymentError(
                        f"stage {stage} of switch {switch_name!r} "
                        f"overloaded: {load:.3f} > {capacity:.3f}"
                    )

    def _check_intra_switch_order(self) -> None:
        for edge in self._tdg.edges:
            up = self._placements[edge.upstream]
            down = self._placements[edge.downstream]
            if up.switch != down.switch:
                continue
            if up.last_stage >= down.first_stage:
                raise DeploymentError(
                    f"dependency {edge.upstream!r} -> {edge.downstream!r} "
                    f"violated on switch {up.switch!r}: rho_end="
                    f"{up.last_stage} >= rho_begin={down.first_stage}"
                )

    def _check_routing(self) -> None:
        for (u, v), _bytes in self.pair_metadata_bytes().items():
            path = self._routing.get((u, v))
            if path is None:
                raise DeploymentError(
                    f"no routed path for communicating pair ({u!r}, {v!r})"
                )
            if path.source != u or path.destination != v:
                raise DeploymentError(
                    f"routed path for ({u!r}, {v!r}) runs "
                    f"{path.source!r} -> {path.destination!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeploymentPlan({len(self._placements)} MATs on "
            f"{self.num_occupied_switches()} switches, "
            f"A_max={self.max_metadata_bytes()}B)"
        )
