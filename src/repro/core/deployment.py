"""Deployment plans: the output of the optimization framework.

A :class:`DeploymentPlan` captures both sets of decision variables from
§V-A — ``x(a, i, u)`` as per-MAT :class:`MatPlacement` records (which
switch, which stages) and ``y(u, v, p)`` as the routing map from
ordered switch pairs to chosen paths — together with validation and the
metrics the evaluation reports: the per-packet byte overhead ``A_max``,
end-to-end latency ``t_e2e`` and occupied switch count ``Q_occ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.paths import Path
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class DeploymentError(ValueError):
    """Raised when a deployment request cannot be satisfied."""


@dataclass(frozen=True)
class MatPlacement:
    """Where one MAT landed: switch ``u`` and stage numbers ``i``.

    ``stages`` is the sorted tuple of (1-based) stage indices the MAT
    occupies; a MAT whose demand exceeds one stage's capacity spans
    several consecutive stages.
    """

    mat_name: str
    switch: str
    stages: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"MAT {self.mat_name!r} placed on no stages")
        if list(self.stages) != sorted(self.stages):
            raise ValueError(f"stages must be sorted: {self.stages}")
        if self.stages[0] < 1:
            raise ValueError("stage indices are 1-based")

    @property
    def first_stage(self) -> int:
        """``rho_begin`` — the first stage running (part of) the MAT."""
        return self.stages[0]

    @property
    def last_stage(self) -> int:
        """``rho_end`` — the last stage running (part of) the MAT."""
        return self.stages[-1]


class DeploymentPlan:
    """A complete network-wide deployment.

    Args:
        tdg: The merged, metadata-annotated TDG that was deployed.
        network: The substrate network.
        placements: Per-MAT placement records (every TDG node exactly
            once).
        routing: Chosen inter-switch paths, keyed by ordered switch
            pair; covers every pair of switches that exchange metadata.
    """

    def __init__(
        self,
        tdg: Tdg,
        network: Network,
        placements: Dict[str, MatPlacement],
        routing: Optional[Dict[Tuple[str, str], Path]] = None,
    ) -> None:
        self.tdg = tdg
        self.network = network
        self.placements = dict(placements)
        self.routing = dict(routing or {})

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def switch_of(self, mat_name: str) -> str:
        """``L(a, u)``: the switch hosting a MAT."""
        try:
            return self.placements[mat_name].switch
        except KeyError:
            raise KeyError(f"MAT {mat_name!r} is not placed") from None

    def mats_on(self, switch: str) -> List[str]:
        """MAT names hosted by a switch, ordered by first stage."""
        on = [p for p in self.placements.values() if p.switch == switch]
        on.sort(key=lambda p: (p.first_stage, p.mat_name))
        return [p.mat_name for p in on]

    def occupied_switches(self) -> List[str]:
        """Switches hosting at least one MAT, in first-use order."""
        seen: List[str] = []
        for placement in self.placements.values():
            if placement.switch not in seen:
                seen.append(placement.switch)
        return seen

    # ------------------------------------------------------------------
    # Metrics (§V-B objectives, measured on the finished plan)
    # ------------------------------------------------------------------
    def pair_metadata_bytes(self) -> Dict[Tuple[str, str], int]:
        """Metadata bytes exchanged per ordered switch pair.

        For each TDG edge whose endpoints sit on different switches,
        its ``A(a, b)`` is charged to the (upstream-switch,
        downstream-switch) pair.
        """
        totals: Dict[Tuple[str, str], int] = {}
        for edge in self.tdg.edges:
            u = self.switch_of(edge.upstream)
            v = self.switch_of(edge.downstream)
            if u == v:
                continue
            key = (u, v)
            totals[key] = totals.get(key, 0) + edge.metadata_bytes
        return totals

    def max_metadata_bytes(self) -> int:
        """``A_max`` — the per-packet byte overhead (Obj#1, Eq. 1)."""
        pairs = self.pair_metadata_bytes()
        return max(pairs.values()) if pairs else 0

    def total_metadata_bytes(self) -> int:
        """Total coordination bytes across all switch pairs."""
        return sum(self.pair_metadata_bytes().values())

    def num_occupied_switches(self) -> int:
        """``Q_occ`` (Obj#3, Eq. 3)."""
        return len(self.occupied_switches())

    def end_to_end_latency_us(self) -> float:
        """``t_e2e`` — the sum of chosen inter-switch path latencies.

        Each distinct communicating switch pair contributes its routed
        path once (Obj#2, Eq. 2 measured on the realized routing).
        """
        total = 0.0
        for pair in self.pair_metadata_bytes():
            path = self.routing.get(pair)
            if path is None:
                raise DeploymentError(
                    f"switch pair {pair} exchanges metadata but has no "
                    "routed path"
                )
            total += path.latency_us
        return total

    def cross_switch_edges(self) -> List[Tuple[str, str]]:
        """TDG edges whose endpoints landed on different switches."""
        return [
            (e.upstream, e.downstream)
            for e in self.tdg.edges
            if self.switch_of(e.upstream) != self.switch_of(e.downstream)
        ]

    def stage_utilization(self, switch: str) -> Dict[int, float]:
        """Per-stage resource load on a switch (stage index -> demand)."""
        load: Dict[int, float] = {}
        for placement in self.placements.values():
            if placement.switch != switch:
                continue
            mat = self.tdg.node(placement.mat_name)
            share = mat.resource_demand / len(placement.stages)
            for stage in placement.stages:
                load[stage] = load.get(stage, 0.0) + share
        return load

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, tol: float = 1e-6) -> None:
        """Check the plan against every paper constraint.

        Raises:
            DeploymentError: Describing the first violated constraint —
                unplaced MATs, non-programmable hosts, stage-capacity
                overflow (Eq. 9), intra-switch ordering (Eq. 8), or
                missing inter-switch routing (Eq. 7).
        """
        self._check_coverage()
        self._check_hosts()
        self._check_stage_capacity(tol)
        self._check_intra_switch_order()
        self._check_routing()

    def _check_coverage(self) -> None:
        placed = set(self.placements)
        nodes = set(self.tdg.node_names)
        missing = nodes - placed
        if missing:
            raise DeploymentError(f"unplaced MATs: {sorted(missing)}")
        extra = placed - nodes
        if extra:
            raise DeploymentError(f"placements for unknown MATs: {sorted(extra)}")

    def _check_hosts(self) -> None:
        for placement in self.placements.values():
            switch = self.network.switch(placement.switch)
            if not switch.programmable:
                raise DeploymentError(
                    f"MAT {placement.mat_name!r} placed on non-programmable "
                    f"switch {switch.name!r}"
                )
            if placement.last_stage > switch.num_stages:
                raise DeploymentError(
                    f"MAT {placement.mat_name!r} uses stage "
                    f"{placement.last_stage} but switch {switch.name!r} "
                    f"has only {switch.num_stages}"
                )

    def _check_stage_capacity(self, tol: float) -> None:
        for switch_name in self.occupied_switches():
            capacity = self.network.switch(switch_name).stage_capacity
            for stage, load in self.stage_utilization(switch_name).items():
                if load > capacity + tol:
                    raise DeploymentError(
                        f"stage {stage} of switch {switch_name!r} "
                        f"overloaded: {load:.3f} > {capacity:.3f}"
                    )

    def _check_intra_switch_order(self) -> None:
        for edge in self.tdg.edges:
            up = self.placements[edge.upstream]
            down = self.placements[edge.downstream]
            if up.switch != down.switch:
                continue
            if up.last_stage >= down.first_stage:
                raise DeploymentError(
                    f"dependency {edge.upstream!r} -> {edge.downstream!r} "
                    f"violated on switch {up.switch!r}: rho_end="
                    f"{up.last_stage} >= rho_begin={down.first_stage}"
                )

    def _check_routing(self) -> None:
        for (u, v), _bytes in self.pair_metadata_bytes().items():
            path = self.routing.get((u, v))
            if path is None:
                raise DeploymentError(
                    f"no routed path for communicating pair ({u!r}, {v!r})"
                )
            if path.source != u or path.destination != v:
                raise DeploymentError(
                    f"routed path for ({u!r}, {v!r}) runs "
                    f"{path.source!r} -> {path.destination!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeploymentPlan({len(self.placements)} MATs on "
            f"{self.num_occupied_switches()} switches, "
            f"A_max={self.max_metadata_bytes()}B)"
        )
