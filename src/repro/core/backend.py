"""The Hermes backend: lowering plans to switch configurations.

The paper's backend takes the decision variables and produces, per
switch, the artifacts the vendor compiler and the controller consume:
which MATs (and rules) run on which stages, what metadata header the
switch must prepend/extract per neighbour, and the forwarding entries
steering packets along the chosen inter-switch paths.

Hardware compilation is out of scope offline; the backend emits the
same information as structured, serializable configuration objects —
sufficient for the simulator, the examples and Exp#6's resource
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.coordination import CoordinationAnalysis
from repro.core.deployment import DeploymentPlan
from repro.dataplane.mat import ResourceDemand


@dataclass
class StageProgram:
    """One stage's worth of configuration."""

    stage: int
    mat_names: List[str] = field(default_factory=list)
    load: float = 0.0


@dataclass
class ForwardingEntry:
    """A controller-installed steering rule: next hop towards a peer."""

    destination_switch: str
    next_hop: str
    path: Tuple[str, ...]


@dataclass
class SwitchConfig:
    """Everything one switch needs to participate in the deployment.

    Attributes:
        switch: Switch name.
        stages: Per-stage MAT layout (only occupied stages listed).
        emit_headers: Metadata header layout to append per downstream
            peer: peer -> list of (field name, offset, size bytes).
        extract_headers: Header layout to parse per upstream peer.
        forwarding: Steering entries towards downstream peers.
        total_rules: Rules installed across the switch's MATs.
        detailed_demand: Aggregate SRAM/TCAM/ALU consumption.
    """

    switch: str
    stages: List[StageProgram] = field(default_factory=list)
    emit_headers: Dict[str, List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )
    extract_headers: Dict[str, List[Tuple[str, int, int]]] = field(
        default_factory=dict
    )
    forwarding: List[ForwardingEntry] = field(default_factory=list)
    total_rules: int = 0
    detailed_demand: ResourceDemand = field(default_factory=ResourceDemand)

    def to_dict(self) -> Dict:
        """A plain-dict rendering (JSON-ready) of the configuration."""
        return {
            "switch": self.switch,
            "stages": [
                {
                    "stage": sp.stage,
                    "mats": list(sp.mat_names),
                    "load": round(sp.load, 6),
                }
                for sp in self.stages
            ],
            "emit_headers": {
                peer: [list(entry) for entry in layout]
                for peer, layout in self.emit_headers.items()
            },
            "extract_headers": {
                peer: [list(entry) for entry in layout]
                for peer, layout in self.extract_headers.items()
            },
            "forwarding": [
                {
                    "destination": fe.destination_switch,
                    "next_hop": fe.next_hop,
                    "path": list(fe.path),
                }
                for fe in self.forwarding
            ],
            "total_rules": self.total_rules,
        }


class Backend:
    """Transforms a validated plan into per-switch configurations."""

    def compile(self, plan: DeploymentPlan) -> Dict[str, SwitchConfig]:
        """Emit a :class:`SwitchConfig` for every occupied switch."""
        coordination = CoordinationAnalysis(plan)
        configs: Dict[str, SwitchConfig] = {
            name: SwitchConfig(switch=name)
            for name in plan.occupied_switches()
        }

        # Stage layouts.
        for name, config in configs.items():
            per_stage: Dict[int, StageProgram] = {}
            for mat_name in plan.mats_on(name):
                placement = plan.placements[mat_name]
                mat = plan.tdg.node(mat_name)
                share = mat.resource_demand / len(placement.stages)
                for stage in placement.stages:
                    sp = per_stage.setdefault(stage, StageProgram(stage))
                    sp.mat_names.append(mat_name)
                    sp.load += share
                config.total_rules += len(mat.rules)
                config.detailed_demand = (
                    config.detailed_demand + mat.detailed_demand
                )
            config.stages = [per_stage[s] for s in sorted(per_stage)]

        # Metadata headers, both directions.
        for (u, v), channel in coordination.channels.items():
            layout = [
                (f.name, offset, f.size_bytes) for f, offset in channel.layout
            ]
            configs[u].emit_headers[v] = layout
            configs[v].extract_headers[u] = layout

        # Forwarding along routed paths.
        for (u, v), path in plan.routing.items():
            if path.hop_count == 0:
                continue
            if u in configs:
                configs[u].forwarding.append(
                    ForwardingEntry(
                        destination_switch=v,
                        next_hop=path.switches[1],
                        path=path.switches,
                    )
                )
        return configs
