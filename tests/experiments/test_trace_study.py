"""Tests for the trace-weighted overhead study."""

from repro.baselines import Ffl, HermesHeuristic
from repro.experiments.trace_study import TraceStudyRow, main, run
from repro.simulation.traces import TraceConfig


def small_rows():
    return run(
        topology_id=2,
        num_programs=8,
        frameworks=[HermesHeuristic(), Ffl()],
        trace_config=TraceConfig(num_flows=100),
    )


class TestTraceStudy:
    def test_rows_cover_frameworks(self):
        rows = small_rows()
        assert {row.framework for row in rows} == {"Hermes", "FFL"}
        for row in rows:
            assert isinstance(row, TraceStudyRow)
            assert row.metrics.mean_fct_us > 0

    def test_hermes_no_worse_on_trace(self):
        rows = {row.framework: row for row in small_rows()}
        assert (
            rows["Hermes"].metrics.mean_slowdown
            <= rows["FFL"].metrics.mean_slowdown
        )
        assert (
            rows["Hermes"].metrics.total_wire_bytes
            <= rows["FFL"].metrics.total_wire_bytes
        )

    def test_main_renders_table(self, capsys):
        rows = small_rows()
        out = main(rows)
        assert "Trace study" in out
        assert "Hermes" in out
