"""Request -> document operations shared by the CLI and the server.

Every control-plane operation (``deploy``, ``plan_diff``,
``simulate``, ``churn_run``, ``suite_run``) is a pure function from a
JSON-able
params dict to a JSON-able result document.  The one-shot CLI commands
and the long-lived server sessions both call *these* functions, which
is what makes the server/CLI differential structural rather than
hopeful: identical params reach identical code, so the deterministic
portion of the result is byte-identical however the request arrived.

Documents separate determinism classes explicitly:

* the **deterministic view** (:func:`deterministic_view`) — plan
  documents, summaries, scenario docs, plan-store histories — depends
  only on the params (and code version), never on wall-clock;
* timing keys (``timing``, the disruption report's convergence
  columns) ride alongside for humans and dashboards but are excluded
  from the byte contract.

Telemetry is the caller's concern: these functions ``emit`` through
:mod:`repro.telemetry` like the layers below them, so a CLI run
attaches a recorder/journal and a server session attaches its
streaming sink around the same call.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.milp.branch_bound import DEFAULT_PROFILE

#: Per-op parameter defaults; also the schema — unknown keys are
#: rejected so a typo'd param fails loudly instead of silently using a
#: default (the CLI can never send one, but a raw protocol client can).
DEPLOY_DEFAULTS: Dict[str, Any] = {
    "workload": "real:10",
    "topology": "linear:3",
    "seed": None,
    "mode": "heuristic",
    "epsilon2": None,
    "time_limit_s": 30.0,
    "solver_profile": DEFAULT_PROFILE,
    "replicate": False,
    "verify": False,
    "configs": False,
}

PLAN_DIFF_DEFAULTS: Dict[str, Any] = {
    "old": None,
    "new": None,
}

SIMULATE_DEFAULTS: Dict[str, Any] = {
    "workload": "real:10",
    "topology": "linear:3",
    "seed": None,
    "mode": "heuristic",
    "time_limit_s": 30.0,
    "solver_profile": DEFAULT_PROFILE,
    "engine": "analytic",
    "load": None,
    "overhead": None,
    "flows": 0,
    "trace_seed": 11,
    "payload": 1024,
    "message_bytes": 1_000_000,
}

SUITE_RUN_DEFAULTS: Dict[str, Any] = {
    "name": None,  # shipped spec name (repro.suite.registry)
    "spec": None,  # inline repro.suite/v1 document
    "workers": 1,
}

CHURN_DEFAULTS: Dict[str, Any] = {
    "workload": "real:10",
    "topology": "wan:16:24",
    "seed": None,
    "events": 8,
    "scenario": None,  # inline scenario doc: replay instead of generate
    "replan_budget_s": None,
    "max_retries": 2,
    "debounce_s": 0.0,
    "incremental": False,
    "max_blast_fraction": 0.3,
    "engine": "analytic",
    "load": None,
}


class OpError(ValueError):
    """Bad params or an op-level failure; maps to ``invalid_params``."""


def resolve_params(
    params: Optional[Mapping[str, Any]], defaults: Mapping[str, Any]
) -> Dict[str, Any]:
    """Defaults merged under ``params``, with unknown keys rejected."""
    params = dict(params or {})
    unknown = sorted(set(params) - set(defaults))
    if unknown:
        raise OpError(
            f"unknown params: {', '.join(unknown)}; "
            f"supported: {', '.join(sorted(defaults))}"
        )
    resolved = dict(defaults)
    resolved.update(params)
    return resolved


# ----------------------------------------------------------------------
# deploy
# ----------------------------------------------------------------------
def deploy_op(params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """One deployment: parse, solve, document.

    The cold path — exactly what ``repro deploy`` runs.  Server
    sessions call this for a session's first deploy (through the
    process pool) and :func:`deploy_doc` directly when the warm
    incremental path produced the plan in-process.
    """
    import time

    from repro.cli import parse_topology, parse_workload
    from repro.core import Hermes

    p = resolve_params(params, DEPLOY_DEFAULTS)
    try:
        programs = parse_workload(p["workload"], seed=p["seed"])
        network = parse_topology(p["topology"], seed=p["seed"])
    except (ValueError, KeyError) as exc:
        raise OpError(str(exc)) from exc
    hermes = Hermes(
        mode=p["mode"],
        epsilon2=p["epsilon2"],
        time_limit_s=p["time_limit_s"],
        replicate_hubs="auto" if p["replicate"] else False,
        solver_profile=p["solver_profile"],
    )
    start = time.perf_counter()
    result = hermes.deploy(programs, network)
    wall_s = time.perf_counter() - start
    return deploy_doc(
        result.plan,
        num_programs=len(programs),
        params=p,
        solve_time_s=result.solve_time_s,
        wall_s=wall_s,
    )


def deploy_doc(
    plan,
    num_programs: int,
    params: Mapping[str, Any],
    solve_time_s: float,
    wall_s: float,
) -> Dict[str, Any]:
    """The deploy result document for an already-produced plan."""
    from repro.core import CoordinationAnalysis

    channels = CoordinationAnalysis(plan)
    doc: Dict[str, Any] = {
        "plan": plan.to_dict(),
        "fingerprint": plan.fingerprint(),
        "summary": {
            "num_mats": len(plan.placements),
            "num_programs": num_programs,
            "occupied_switches": plan.num_occupied_switches(),
            "network": plan.network.name,
            "a_max_bytes": plan.max_metadata_bytes(),
            "channels": [
                {"src": u, "dst": v, "bytes": channel.declared_bytes}
                for (u, v), channel in sorted(channels.channels.items())
            ],
        },
        "timing": {"solve_time_s": solve_time_s, "wall_s": wall_s},
    }
    if params.get("verify"):
        from repro.core.verification import verify_dataflow

        report = verify_dataflow(plan)
        doc["verification"] = {
            "reads_checked": report.reads_checked,
            "rounds": report.rounds,
        }
    if params.get("configs"):
        from repro.core import Backend

        configs = Backend().compile(plan)
        doc["configs"] = {k: v.to_dict() for k, v in configs.items()}
    return doc


# ----------------------------------------------------------------------
# plan_diff
# ----------------------------------------------------------------------
def plan_diff_op(
    params: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Structural diff of two plan documents."""
    from repro.plan import diff_plans
    from repro.plan.serialize import PlanSchemaError, plan_from_dict

    p = resolve_params(params, PLAN_DIFF_DEFAULTS)
    if not isinstance(p["old"], dict) or not isinstance(p["new"], dict):
        raise OpError(
            "plan_diff needs 'old' and 'new' plan documents "
            "(repro.plan/v1 objects)"
        )
    try:
        old = plan_from_dict(p["old"])
        new = plan_from_dict(p["new"])
    except (PlanSchemaError, KeyError, ValueError) as exc:
        raise OpError(f"cannot load plan document: {exc}") from exc
    diff = diff_plans(old, new)
    return {
        "summary": diff.summary(),
        "diff": diff.to_dict(),
        "is_empty": diff.is_empty,
    }


# ----------------------------------------------------------------------
# simulate
# ----------------------------------------------------------------------
def simulate_op(
    params: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Traffic evaluation through the spec + engine pipeline.

    Mirrors ``repro simulate``: with ``overhead`` the scalar
    uniform-path model, otherwise deploy-then-evaluate on the plan's
    real routed pairs; ``flows`` swaps in a seeded heavy-tailed trace.
    """
    from repro.simulation.engine import (
        EngineUnavailableError,
        get_engine,
    )
    from repro.simulation.spec import (
        E2E_HOPS,
        SimulationSpec,
        TrafficModel,
    )
    from repro.simulation.traces import TraceConfig, generate_trace

    p = resolve_params(params, SIMULATE_DEFAULTS)
    trace = (
        generate_trace(
            p["trace_seed"], TraceConfig(num_flows=p["flows"])
        )
        if p["flows"]
        else None
    )
    traffic = TrafficModel(
        packet_payload_bytes=p["payload"],
        message_bytes=p["message_bytes"],
    )
    doc: Dict[str, Any] = {}
    if p["overhead"] is not None:
        if trace is None:
            spec = SimulationSpec.uniform(
                p["overhead"],
                packet_payload_bytes=p["payload"],
                message_bytes=p["message_bytes"],
            )
        else:
            from repro.simulation.netsim import uniform_path

            spec = SimulationSpec.from_trace(
                trace,
                uniform_path(E2E_HOPS),
                p["overhead"],
                packet_payload_bytes=p["payload"],
            )
    else:
        from repro.cli import parse_topology, parse_workload
        from repro.core import Hermes

        try:
            programs = parse_workload(p["workload"], seed=p["seed"])
            network = parse_topology(p["topology"], seed=p["seed"])
        except (ValueError, KeyError) as exc:
            raise OpError(str(exc)) from exc
        hermes = Hermes(
            mode=p["mode"],
            time_limit_s=p["time_limit_s"],
            solver_profile=p["solver_profile"],
        )
        plan = hermes.deploy(programs, network).plan
        doc["deploy"] = {
            "fingerprint": plan.fingerprint(),
            "num_mats": len(plan.placements),
            "occupied_switches": plan.num_occupied_switches(),
            "a_max_bytes": plan.max_metadata_bytes(),
        }
        spec = SimulationSpec.from_plan(
            plan, network, traffic=traffic, trace=trace
        )
    engine = resolve_engine(p["engine"], p["load"])
    try:
        result = get_engine(engine).evaluate(spec)
    except EngineUnavailableError as exc:
        raise OpError(f"engine unavailable: {exc}") from exc
    doc["summary"] = simulation_summary(spec, result)
    doc["timing"] = {"wall_ms": result.wall_s * 1e3}
    return doc


def resolve_engine(name: Optional[str], load: Optional[float]):
    """``engine``/``load`` params -> an engine name or instance.

    A ``load`` implies the contention engine, matching the CLI flags.
    """
    if name == "contention" or load is not None:
        from repro.simulation.contention import ContentionEngine

        return ContentionEngine(load=load)
    return name or "analytic"


def simulation_summary(spec, result) -> Dict[str, Any]:
    """The deterministic summary of one engine evaluation.

    Exactly the document ``repro simulate --json`` reports, minus the
    wall-clock key (which travels in the result's ``timing`` section).
    """
    summary: Dict[str, Any] = {
        "engine": result.engine,
        "source": spec.source,
        "flows": result.num_flows,
        "paths": len(spec.paths),
        "mean_fct_us": result.mean_fct_us,
        "p99_fct_us": result.p99_fct_us,
        "mean_slowdown": result.mean_slowdown,
        "worst_fct_ratio": result.fct_ratio,
        "worst_goodput_ratio": result.goodput_ratio,
        "total_wire_mb": result.total_wire_bytes / 1e6,
    }
    if result.wait_us is not None:
        summary["load"] = result.load
        summary["mean_wait_us"] = result.mean_wait_us
        summary["max_wait_us"] = result.max_wait_us
        summary["contended_fraction"] = result.contended_fraction
    return summary


# ----------------------------------------------------------------------
# churn_run
# ----------------------------------------------------------------------
def run_churn(params: Optional[Mapping[str, Any]] = None) -> Tuple[
    Any, Any, Any
]:
    """Generate-or-load a scenario and reconcile through it.

    Returns ``(scenario, result, report)`` — the live objects, for
    callers (the local CLI) that need the plan store or controller;
    :func:`churn_op` wraps them into the wire document.
    """
    from repro.cli import _pin_spec_seed, parse_topology, parse_workload
    from repro.runtime import (
        Reconciler,
        ReconcilerPolicy,
        Scenario,
        ScenarioError,
        generate_scenario,
        seed_rules,
    )

    p = resolve_params(params, CHURN_DEFAULTS)
    if p["scenario"] is not None:
        try:
            scenario = Scenario.from_dict(p["scenario"])
        except (ScenarioError, KeyError, ValueError) as exc:
            raise OpError(f"cannot load scenario: {exc}") from exc
        try:
            network = parse_topology(scenario.topology_spec, seed=p["seed"])
            programs = parse_workload(
                scenario.workload_spec, seed=p["seed"]
            )
        except (ValueError, KeyError) as exc:
            raise OpError(str(exc)) from exc
    else:
        workload_spec = _pin_spec_seed(p["workload"], p["seed"], "synthetic")
        topology_spec = _pin_spec_seed(p["topology"], p["seed"], "wan")
        try:
            network = parse_topology(topology_spec)
            programs = parse_workload(workload_spec)
        except (ValueError, KeyError) as exc:
            raise OpError(str(exc)) from exc
        scenario = generate_scenario(
            network,
            num_events=p["events"],
            seed=p["seed"] if p["seed"] is not None else 0,
            workload_spec=workload_spec,
            topology_spec=topology_spec,
        )
    policy = ReconcilerPolicy(
        replan_budget_s=p["replan_budget_s"],
        max_retries=p["max_retries"],
        debounce_s=p["debounce_s"],
        incremental=p["incremental"],
        max_blast_fraction=p["max_blast_fraction"],
    )
    reconciler = Reconciler(
        programs, network, policy=policy, prepare_fn=seed_rules
    )
    result = reconciler.run(scenario)
    report = result.report(engine=p["engine"], load=p["load"])
    return scenario, result, report


def churn_doc(scenario, result, report) -> Dict[str, Any]:
    """The churn result document: scenario + history + report."""
    return {
        "scenario": scenario.to_dict(),
        "history": result.store.to_dict(),
        "report": report.to_dict(),
        "converged": all(o.converged for o in result.outcomes),
    }


def churn_op(params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    scenario, result, report = run_churn(params)
    return churn_doc(scenario, result, report)


# ----------------------------------------------------------------------
# suite_run
# ----------------------------------------------------------------------
def suite_op(params: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Run one declarative suite end to end.

    Exactly what ``repro suite run`` does in-process: resolve a
    shipped spec by ``name`` or validate an inline ``spec`` document,
    compile it through :func:`repro.suite.compiler.run_suite` and wrap
    the :class:`~repro.suite.report.SuiteReport` document.  Per-cell
    progress reaches subscribed clients through the same telemetry
    stream as every other op (``suite.start``/``suite.cell``/
    ``suite.done``).
    """
    from repro.suite import SuiteSpec, SuiteSpecError, load_spec, run_suite

    p = resolve_params(params, SUITE_RUN_DEFAULTS)
    if (p["name"] is None) == (p["spec"] is None):
        raise OpError("suite_run needs exactly one of 'name' or 'spec'")
    if p["spec"] is not None and not isinstance(p["spec"], dict):
        raise OpError("'spec' must be a repro.suite/v1 document object")
    try:
        if p["spec"] is not None:
            spec = SuiteSpec.from_dict(p["spec"])
        else:
            spec = load_spec(p["name"])
    except (SuiteSpecError, ValueError) as exc:
        raise OpError(str(exc)) from exc
    runner = None
    workers = p["workers"] or 1
    if workers > 1:
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(workers=workers)
    report = run_suite(spec, runner=runner)
    return {"report": report.to_dict()}


# ----------------------------------------------------------------------
# The differential contract
# ----------------------------------------------------------------------
#: Handlers by op name, as the server dispatches them.
OP_FUNCTIONS = {
    "deploy": deploy_op,
    "plan_diff": plan_diff_op,
    "simulate": simulate_op,
    "churn_run": churn_op,
    "suite_run": suite_op,
}


def deterministic_view(op: str, doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The byte-comparable portion of an op's result document.

    This is the server/CLI differential contract: for equal params,
    ``canonical_dumps(deterministic_view(op, doc))`` must be equal
    whether ``doc`` came from a warm server session, a cold server
    session, or a one-shot CLI/harness run.  Wall-clock material —
    ``timing`` sections and the disruption report (whose convergence
    columns are measured latencies) — is excluded by construction, as
    is the per-session ``session`` envelope (a warm deploy reports a
    different source/version than a cold one *by design* while
    producing the same plan bytes).
    """
    doc = dict(doc)
    doc.pop("session", None)
    if op == "simulate":
        return {"summary": doc["summary"], **(
            {"deploy": doc["deploy"]} if "deploy" in doc else {}
        )}
    if op == "churn_run":
        return {
            "scenario": doc["scenario"],
            "history": doc["history"],
            "converged": doc["converged"],
        }
    if op == "suite_run":
        # Cache hits depend on run history, not params, and the
        # rendered tables embed measured execution-time columns
        # (Fig. 5(b)/7/9(b)): both are excluded, like ``timing``.
        # Cell records carry only deterministic_fields by construction.
        report = {
            k: v for k, v in doc["report"].items() if k != "tables"
        }
        report["cells"] = [
            {k: v for k, v in cell.items() if k != "cached"}
            for cell in report["cells"]
        ]
        report["meta"] = {
            k: v
            for k, v in report.get("meta", {}).items()
            if k != "cached_cells"
        }
        return {"report": report}
    doc.pop("timing", None)
    return doc
