"""Hermes under the common framework interface.

``HermesHeuristic`` is the paper's contribution (Algorithm 2);
``HermesOptimal`` is the Gurobi-style exact configuration ("Optimal" in
the figures), solved by the same branch & bound engine as the ILP
baselines.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.baselines.base import DeploymentFramework
from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.formulation import HermesMilp
from repro.core.heuristic import GreedyHeuristic
from repro.dataplane.program import Program
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.milp.solution import SolveStatus
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class HermesHeuristic(DeploymentFramework):
    """Hermes with the greedy heuristic (the paper's default)."""

    name = "Hermes"
    merges = True

    def __init__(
        self,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
    ) -> None:
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        heuristic = GreedyHeuristic(
            epsilon1=self.epsilon1, epsilon2=self.epsilon2
        )
        return heuristic.deploy(tdg, network, paths), False


class HermesOptimal(DeploymentFramework):
    """Hermes' objective solved exactly ("Optimal" in the figures)."""

    name = "Optimal"
    merges = True

    def __init__(
        self,
        time_limit_s: float = 60.0,
        max_candidates: Optional[int] = 8,
        epsilon1: float = math.inf,
        epsilon2: Optional[int] = None,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        self.time_limit_s = time_limit_s
        self.max_candidates = max_candidates
        self.epsilon1 = epsilon1
        self.epsilon2 = epsilon2
        self.solver_profile = solver_profile

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        formulation = HermesMilp(
            epsilon1=self.epsilon1,
            epsilon2=self.epsilon2,
            max_candidates=self.max_candidates,
            time_limit_s=self.time_limit_s,
            solver_profile=self.solver_profile,
        )
        heuristic = GreedyHeuristic(
            epsilon1=self.epsilon1, epsilon2=self.epsilon2
        )
        try:
            greedy_plan = heuristic.deploy(tdg, network, paths)
        except DeploymentError:
            greedy_plan = None
        try:
            # Seed the exact search with the heuristic incumbent, the
            # way a practitioner warm-starts Gurobi.
            plan = formulation.deploy(
                tdg, network, paths, warm_start_plan=greedy_plan
            )
        except DeploymentError:
            if greedy_plan is None:
                raise
            # No better incumbent within the budget: the best-known
            # solution is the heuristic's.
            return greedy_plan, True
        solution = formulation.last_solution
        timed_out = bool(
            solution is not None
            and solution.status
            in (SolveStatus.FEASIBLE, SolveStatus.TIME_LIMIT)
        )
        if timed_out and greedy_plan is not None:
            # A time-limited incumbent is not necessarily better than
            # the greedy answer; report whichever has lower overhead.
            if (
                greedy_plan.max_metadata_bytes()
                < plan.max_metadata_bytes()
            ):
                return greedy_plan, timed_out
        return plan, timed_out
