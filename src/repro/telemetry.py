"""Lightweight process-local event bus.

Instrumented code (the branch & bound solver, the deployment framework
interface) calls :func:`emit` at interesting moments; by default that is
a no-op costing one attribute lookup.  A caller who wants the events —
the experiment runner's journal, a test, an ad-hoc profiler — attaches a
*sink* (any callable taking one ``dict``) around the code under
observation:

    rec = Recorder()
    with attached(rec):
        solver.solve(model)
    assert rec.count("solver.lp") == solution.lp_solves

Sinks are thread-local, so concurrently running solves (e.g. worker
threads) never interleave their event streams.  Worker *processes*
each carry their own bus; the experiment runner collects their recorded
events through the task return value and serializes them into the
per-run journal in deterministic order.

The bus deliberately lives outside :mod:`repro.experiments` so that the
low-level layers (``repro.milp``, ``repro.baselines``) can emit without
depending on the experiment machinery.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: A telemetry event: ``{"kind": <str>, **payload}``.
Event = Dict[str, Any]
Sink = Callable[[Event], None]

_state = threading.local()


def current_sink() -> Optional[Sink]:
    """The sink attached to this thread, or None."""
    return getattr(_state, "sink", None)


def emit(kind: str, **payload: Any) -> None:
    """Send one event to the attached sink (no-op without a sink)."""
    sink = getattr(_state, "sink", None)
    if sink is None:
        return
    event: Event = {"kind": kind}
    event.update(payload)
    sink(event)


@contextmanager
def attached(sink: Sink) -> Iterator[Sink]:
    """Attach ``sink`` as this thread's event sink for the block.

    Nested attachments stack: the innermost sink wins and the previous
    one is restored on exit.
    """
    previous = getattr(_state, "sink", None)
    _state.sink = sink
    try:
        yield sink
    finally:
        _state.sink = previous


def tee(*sinks: Sink) -> Sink:
    """A sink that forwards every event to each of ``sinks`` in order.

    Lets one block feed a journal and a recorder at once:

        with attached(tee(journal_sink, recorder)):
            reconciler.run(scenario)
    """

    def _fanout(event: Event) -> None:
        for sink in sinks:
            sink(event)

    return _fanout


class Recorder:
    """A sink that keeps every event in order of emission."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.get("kind") == kind)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.get("kind") == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
