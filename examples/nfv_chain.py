#!/usr/bin/env python3
"""An offloaded NFV chain that cannot fit one switch.

The paper's third scenario: a chain of network functions (NAT ->
stateful firewall -> load balancer -> telemetry) offloaded to the data
plane.  The combined chain exceeds one switch's pipeline, so it must be
disaggregated — and every cut edge piggybacks NF state on packets.
This example contrasts where Hermes cuts the chain (cheapest edges)
with a naive balanced cut, and prints the resulting per-hop headers.

Run:  python examples/nfv_chain.py
"""

from repro.core import Backend, CoordinationAnalysis, Hermes
from repro.core.analyzer import ProgramAnalyzer
from repro.dataplane import (
    Mat,
    Program,
    counter_update,
    hash_compute,
    metadata_field,
    modify,
    standard_headers,
)
from repro.network import linear_topology


def build_nfv_chain() -> Program:
    """One program: NAT -> firewall -> LB -> telemetry, heavy state."""
    hdr = standard_headers()
    conn = metadata_field("nfv.conn_id", 32)
    nat_state = metadata_field("nfv.nat_state", 48)
    fw_verdict = metadata_field("nfv.fw_verdict", 8)
    lb_target = metadata_field("nfv.lb_target", 32)
    telemetry = metadata_field("nfv.telemetry", 96)

    mats = [
        Mat(
            "conn_hash",
            match_fields=[hdr["ipv4.protocol"]],
            actions=[
                hash_compute(conn, [hdr["ipv4.src_addr"], hdr["tcp.src_port"]])
            ],
            capacity=16,
            resource_demand=0.6,
        ),
        Mat(
            "nat",
            match_fields=[conn],
            actions=[modify(nat_state, [conn], name="translate")],
            capacity=65536,
            resource_demand=0.9,
        ),
        Mat(
            "firewall",
            match_fields=[conn, hdr["tcp.flags"]],
            actions=[modify(fw_verdict, [nat_state], name="inspect")],
            capacity=65536,
            resource_demand=0.9,
        ),
        Mat(
            "load_balancer",
            match_fields=[fw_verdict],
            actions=[modify(lb_target, [conn], name="pick_backend")],
            capacity=4096,
            resource_demand=0.8,
        ),
        Mat(
            "telemetry",
            match_fields=[lb_target],
            actions=[counter_update(conn, telemetry, name="record")],
            capacity=4096,
            resource_demand=0.7,
        ),
    ]
    return Program("nfv_chain", mats)


def main() -> None:
    program = build_nfv_chain()
    # Two stages per switch: the chain (3.9 units) needs >= 2 switches.
    network = linear_topology(3, num_stages=2, stage_capacity=1.0)

    tdg = ProgramAnalyzer().analyze([program])
    print("NF chain edges and their state sizes:")
    for edge in tdg.edges:
        print(
            f"  {edge.upstream.split('.')[-1]} -> "
            f"{edge.downstream.split('.')[-1]}: {edge.metadata_bytes} B"
        )

    result = Hermes().deploy([program], network)
    plan = result.plan
    print(
        f"\nHermes split the chain over {plan.num_occupied_switches()} "
        f"switches with A_max = {plan.max_metadata_bytes()} B"
    )
    for switch in plan.occupied_switches():
        names = [m.split(".")[-1] for m in plan.mats_on(switch)]
        print(f"  {switch}: {' -> '.join(names)}")

    coordination = CoordinationAnalysis(plan)
    configs = Backend().compile(plan)
    print("\nper-hop piggyback headers:")
    for (u, v), channel in sorted(coordination.channels.items()):
        layout = configs[u].emit_headers[v]
        rendered = ", ".join(
            f"{name}@{offset}(+{size}B)" for name, offset, size in layout
        )
        print(f"  {u} -> {v}: {rendered}")


if __name__ == "__main__":
    main()
