"""The program analyzer (Algorithm 1).

Transforms a set of data plane programs into one merged TDG ``T_m``
whose every edge carries its metadata size ``A(a, b)``:

1. convert each program to a TDG (``build_tdg``);
2. merge the TDGs pairwise with SPEED-style redundancy elimination
   (``merge_tdgs``);
3. annotate every edge with its metadata byte count
   (``annotate_metadata_sizes``).
"""

from __future__ import annotations

from typing import Sequence

from repro.dataplane.program import Program
from repro.tdg.analysis import annotate_metadata_sizes
from repro.tdg.builder import build_tdg
from repro.tdg.graph import Tdg
from repro.tdg.merge import merge_tdgs


class ProgramAnalyzer:
    """Front end of Hermes: programs in, merged annotated TDG out.

    Args:
        merge: Whether to run SPEED-style redundancy elimination while
            merging.  Disabling it keeps one node per program MAT
            (useful for the merge-ablation benchmark).
    """

    def __init__(self, merge: bool = True) -> None:
        self.merge = merge

    def analyze(self, programs: Sequence[Program]) -> Tdg:
        """Run Algorithm 1 over ``programs`` and return ``T_m``."""
        if not programs:
            raise ValueError("analyze() needs at least one program")
        names = [p.name for p in programs]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate program names: {dupes}")
        tdgs = [build_tdg(program) for program in programs]
        if self.merge:
            merged = merge_tdgs(tdgs, name="T_m")
        else:
            merged = tdgs[0].copy("T_m")
            for tdg in tdgs[1:]:
                for mat in tdg.mats:
                    merged.add_node(mat)
                for edge in tdg.edges:
                    merged.add_edge(
                        edge.upstream,
                        edge.downstream,
                        edge.dep_type,
                        edge.metadata_bytes,
                    )
        return annotate_metadata_sizes(merged)
