"""Tests for the blast-radius-restricted delta formulation.

The load-bearing property: the delta model minimizes the *same*
``A_max`` P#1 does, just over a restricted cube — so with everything
free it must match the full formulation's optimum, and with a real
blast radius its prediction must equal the spliced plan's exact probe.
"""

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.delta import DeltaFormulation, select_delta_candidates
from repro.core.deployment import DeploymentError
from repro.core.formulation import HermesMilp
from repro.core.heuristic import GreedyHeuristic
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.plan.splice import splice_plan


@pytest.fixture
def deployed(six_programs, small_line):
    tdg = ProgramAnalyzer().analyze(six_programs)
    paths = PathEnumerator(small_line)
    plan = GreedyHeuristic().deploy(tdg, small_line, paths)
    return tdg, small_line, paths, plan


def drop_switch(network, victim):
    out = Network(network.name)
    for switch in network.switches:
        if switch.name != victim:
            out.add_switch(switch)
    for link in network.links:
        if victim not in link.key:
            out.add_link(link)
    return out


class TestDeltaMatchesFullModel:
    def test_all_free_equals_full_optimum(self, deployed):
        tdg, network, paths, plan = deployed
        full = HermesMilp(max_candidates=3)
        optimal = full.deploy(tdg, network, paths)
        delta = DeltaFormulation()
        assignment = delta.solve(
            tdg, network, plan, list(plan.placements), paths
        )
        assert set(assignment) == set(plan.placements)
        assert delta.last_predicted_amax == optimal.max_metadata_bytes()

    def test_prediction_equals_spliced_probe(self, deployed):
        tdg, network, paths, plan = deployed
        victim = plan.occupied_switches()[0]
        shrunk = drop_switch(network, victim)
        free = [
            name
            for name, p in plan.placements.items()
            if p.switch == victim
        ]
        if not free:
            pytest.skip("greedy colocated everything elsewhere")
        delta = DeltaFormulation()
        shrunk_paths = PathEnumerator(shrunk)
        assignment = delta.solve(tdg, shrunk, plan, free, shrunk_paths)
        spliced = splice_plan(
            plan,
            shrunk,
            assignment,
            shrunk_paths,
            amax_cap=delta.last_predicted_amax,
        )
        assert (
            spliced.max_metadata_bytes() == delta.last_predicted_amax
        )


class TestDeltaMechanics:
    def test_fixed_mats_stay_out_of_the_assignment(self, deployed):
        tdg, network, paths, plan = deployed
        free = [sorted(plan.placements)[0]]
        delta = DeltaFormulation()
        assignment = delta.solve(tdg, network, plan, free, paths)
        assert set(assignment) == set(free)

    def test_empty_blast_radius_short_circuits(self, deployed):
        tdg, network, paths, plan = deployed
        delta = DeltaFormulation()
        assert delta.solve(tdg, network, plan, [], paths) == {}
        assert delta.last_predicted_amax == plan.max_metadata_bytes()
        assert delta.last_solution is None

    def test_presolve_cache_reused_across_solves(self, deployed):
        tdg, network, paths, plan = deployed
        free = [sorted(plan.placements)[0]]
        delta = DeltaFormulation()
        delta.solve(tdg, network, plan, free, paths)
        delta.solve(tdg, network, plan, free, paths)
        assert delta.presolve_cache.hits >= 1

    def test_unknown_free_mat_raises(self, deployed):
        tdg, network, paths, plan = deployed
        with pytest.raises(DeploymentError, match="not in TDG"):
            DeltaFormulation().solve(
                tdg, network, plan, ["ghost.mat"], paths
            )

    def test_candidates_cover_residual_demand(self, deployed):
        tdg, network, paths, plan = deployed
        free = sorted(plan.placements)[:3]
        candidates = select_delta_candidates(
            tdg, network, paths, plan, free, max_candidates=1
        )
        fixed_load = {}
        for name, p in plan.placements.items():
            if name not in set(free):
                fixed_load[p.switch] = (
                    fixed_load.get(p.switch, 0.0)
                    + tdg.node(name).resource_demand
                )
        residual = sum(
            network.switch(u).total_capacity - fixed_load.get(u, 0.0)
            for u in candidates
        )
        demand = sum(tdg.node(name).resource_demand for name in free)
        assert residual >= demand
