"""Unit tests for path enumeration."""

import pytest

from repro.network.generators import linear_topology
from repro.network.paths import (
    Path,
    PathEnumerator,
    k_shortest_paths,
    path_latency_us,
    shortest_path,
)
from repro.network.switch import Switch
from repro.network.topology import Network


def diamond():
    """a - b - d and a - c - d with c-side slower."""
    net = Network("diamond")
    for name in "abcd":
        net.add_switch(Switch(name, latency_us=1.0))
    net.connect("a", "b", latency_ms=1.0)
    net.connect("b", "d", latency_ms=1.0)
    net.connect("a", "c", latency_ms=5.0)
    net.connect("c", "d", latency_ms=5.0)
    return net


class TestPath:
    def test_properties(self):
        p = Path(("a", "b", "c"), 10.0)
        assert p.source == "a"
        assert p.destination == "c"
        assert p.hop_count == 2
        assert p.links() == [("a", "b"), ("b", "c")]
        assert p.contains("b")
        assert p.contains_link("b", "a")
        assert not p.contains_link("a", "c")

    def test_rejects_revisits(self):
        with pytest.raises(ValueError, match="revisits"):
            Path(("a", "b", "a"), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Path((), 0.0)


class TestShortestPath:
    def test_prefers_low_latency(self):
        net = diamond()
        path = shortest_path(net, "a", "d")
        assert path.switches == ("a", "b", "d")

    def test_latency_sums_switches_and_links(self):
        net = diamond()
        path = shortest_path(net, "a", "d")
        # 3 switches x 1 us + 2 links x 1000 us
        assert path.latency_us == pytest.approx(2003.0)
        assert path_latency_us(net, path.switches) == pytest.approx(2003.0)

    def test_unreachable_returns_none(self):
        net = diamond()
        net.add_switch(Switch("island"))
        assert shortest_path(net, "a", "island") is None


class TestKShortest:
    def test_returns_distinct_paths_in_order(self):
        net = diamond()
        paths = k_shortest_paths(net, "a", "d", 5)
        assert len(paths) == 2
        assert paths[0].latency_us <= paths[1].latency_us
        assert paths[0].switches != paths[1].switches

    def test_k_limits_output(self):
        net = diamond()
        assert len(k_shortest_paths(net, "a", "d", 1)) == 1

    def test_zero_k(self):
        assert k_shortest_paths(diamond(), "a", "d", 0) == []

    def test_line_has_single_path(self):
        net = linear_topology(4)
        paths = k_shortest_paths(net, "s0", "s3", 3)
        assert len(paths) == 1
        assert paths[0].switches == ("s0", "s1", "s2", "s3")


class TestPathEnumerator:
    def test_caches_and_returns_sorted(self):
        net = diamond()
        enum = PathEnumerator(net, k=3)
        first = enum.paths("a", "d")
        assert first is enum.paths("a", "d")  # cached object
        latencies = [p.latency_us for p in first]
        assert latencies == sorted(latencies)

    def test_self_path_is_trivial(self):
        enum = PathEnumerator(diamond(), k=2)
        trivial = enum.paths("a", "a")
        assert len(trivial) == 1
        assert trivial[0].switches == ("a",)

    def test_shortest_and_reachable(self):
        net = diamond()
        net.add_switch(Switch("island"))
        enum = PathEnumerator(net)
        assert enum.shortest("a", "d").switches == ("a", "b", "d")
        assert enum.shortest("a", "island") is None
        assert enum.reachable("a", "d")
        assert not enum.reachable("a", "island")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PathEnumerator(diamond(), k=0)
