"""Shipped suite specs: the paper's experiments as data files.

Every ``*.json`` under ``repro/suite/specs/`` is a named
``repro.suite/v1`` document; ``load_spec`` resolves a name (``exp2``)
or a filesystem path (``my-sweep.json``/``.yaml``), so the CLI and
the server share one lookup.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.suite.spec import SuiteSpec

_SPEC_DIR = os.path.join(os.path.dirname(__file__), "specs")


def spec_names() -> List[str]:
    """The shipped spec names, sorted."""
    return sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(_SPEC_DIR)
        if entry.endswith(".json")
    )


def spec_path(name: str) -> str:
    """Filesystem path of a shipped spec."""
    path = os.path.join(_SPEC_DIR, f"{name}.json")
    if not os.path.isfile(path):
        raise ValueError(
            f"unknown suite spec {name!r}; shipped: {spec_names()}"
        )
    return path


def load_spec(name_or_path: str) -> SuiteSpec:
    """Load a shipped spec by name, or any spec file by path."""
    if os.path.sep in name_or_path or name_or_path.endswith(
        (".json", ".yaml", ".yml")
    ):
        if not os.path.isfile(name_or_path):
            raise ValueError(f"no such spec file: {name_or_path!r}")
        return SuiteSpec.load(name_or_path)
    return SuiteSpec.load(spec_path(name_or_path))


def shipped_specs() -> Dict[str, SuiteSpec]:
    """Every shipped spec, loaded and validated."""
    return {name: SuiteSpec.load(spec_path(name)) for name in spec_names()}


__all__ = ["load_spec", "shipped_specs", "spec_names", "spec_path"]
