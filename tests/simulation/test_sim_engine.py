"""Tests for the evaluation engines (repro.simulation.engine).

The heart of this module is the differential lock-in: the legacy
hand-built-flow implementations of ``end_to_end_impact`` and
``evaluate_trace`` are copied here verbatim as oracles, and the new
spec+engine pipeline must reproduce them bit-for-bit through the
analytic engine (and within documented tolerance through the others).
"""

from typing import List, Sequence

import pytest

from repro.simulation.engine import (
    BATCH_REL_TOLERANCE,
    DEFAULT_ENGINE,
    ENGINES,
    AnalyticEngine,
    BatchEngine,
    Engine,
    ExactEngine,
    get_engine,
    overhead_impact,
)
from repro.simulation.flow import Flow
from repro.simulation.metrics import normalized_against
from repro.simulation.netsim import HopSpec, analytic_fct, uniform_path
from repro.simulation.spec import SimulationSpec
from repro.simulation.traces import (
    TraceConfig,
    TraceFlow,
    evaluate_trace,
    generate_trace,
)
from repro.telemetry import Recorder, attached

# ----------------------------------------------------------------------
# Legacy oracles (pre-refactor implementations, kept verbatim)
# ----------------------------------------------------------------------
LEGACY_MIN_PAYLOAD_BYTES = 64


def legacy_end_to_end_impact(
    overhead_bytes: int,
    packet_payload_bytes: int = 1024,
    hops: int = 5,
    message_bytes: int = 1_000_000,
):
    """The pre-spec harness implementation, copied verbatim."""
    path = uniform_path(hops)
    baseline_flow = Flow(
        0, message_bytes, packet_payload_bytes, overhead_bytes=0
    )
    mtu = max(
        baseline_flow.mtu,
        overhead_bytes
        + baseline_flow.header_bytes
        + LEGACY_MIN_PAYLOAD_BYTES,
    )
    baseline = analytic_fct(baseline_flow, path)
    measured = analytic_fct(
        Flow(
            1,
            message_bytes,
            packet_payload_bytes,
            overhead_bytes=overhead_bytes,
            mtu=mtu,
        ),
        path,
    )
    norm = normalized_against(measured, baseline)
    return norm.fct_ratio, norm.goodput_ratio


def legacy_evaluate_trace(
    trace: Sequence[TraceFlow],
    path: Sequence[HopSpec],
    overhead_bytes: int,
    packet_payload_bytes: int = 1024,
):
    """The pre-spec trace evaluator, copied verbatim."""
    fcts: List[float] = []
    slowdowns: List[float] = []
    wire = 0
    for flow in trace:
        loaded = analytic_fct(
            Flow(
                flow.flow_id,
                flow.message_bytes,
                packet_payload_bytes,
                overhead_bytes=overhead_bytes,
                mtu=max(1500, overhead_bytes + 54 + 64),
            ),
            path,
        )
        baseline = analytic_fct(
            Flow(
                flow.flow_id,
                flow.message_bytes,
                packet_payload_bytes,
                overhead_bytes=0,
            ),
            path,
        )
        fcts.append(loaded.fct_us)
        slowdowns.append(loaded.fct_us / baseline.fct_us)
        wire += loaded.wire_bytes_per_hop
    fcts_sorted = sorted(fcts)
    p99_index = min(len(fcts_sorted) - 1, int(0.99 * len(fcts_sorted)))
    return (
        sum(fcts) / len(fcts),
        fcts_sorted[p99_index],
        sum(slowdowns) / len(slowdowns),
        wire,
    )


# The sweep crosses the MTU-widening boundary (1500 - 54 - 64 = 1382)
# and goes far past the nominal MTU.
OVERHEADS = (0, 1, 28, 48, 108, 400, 1382, 1383, 1446, 1500, 2000, 3000)


class TestDifferentialLockIn:
    @pytest.mark.parametrize("overhead", OVERHEADS)
    def test_overhead_impact_bit_for_bit(self, overhead):
        assert overhead_impact(overhead) == legacy_end_to_end_impact(
            overhead
        )

    @pytest.mark.parametrize("payload", (458, 512, 970, 1024, 1446))
    def test_bit_for_bit_across_payloads(self, payload):
        for overhead in (0, 48, 1400, 2000):
            new = overhead_impact(
                overhead, packet_payload_bytes=payload
            )
            old = legacy_end_to_end_impact(
                overhead, packet_payload_bytes=payload
            )
            assert new == old

    def test_harness_delegates_to_the_pipeline(self):
        from repro.experiments.harness import end_to_end_impact

        for overhead in OVERHEADS:
            assert end_to_end_impact(overhead) == (
                legacy_end_to_end_impact(overhead)
            )

    @pytest.mark.parametrize("overhead", (0, 6, 64, 1400, 2000))
    def test_evaluate_trace_bit_for_bit(self, overhead):
        trace = generate_trace(11, TraceConfig(num_flows=200))
        path = uniform_path(5)
        metrics = evaluate_trace(trace, path, overhead)
        mean, p99, slowdown, wire = legacy_evaluate_trace(
            trace, path, overhead
        )
        assert metrics.mean_fct_us == mean
        assert metrics.p99_fct_us == p99
        assert metrics.mean_slowdown == slowdown
        assert metrics.total_wire_bytes == wire

    def test_fig2_rows_match_legacy_normalization(self):
        from repro.experiments.fig2_motivation import run

        for row in run():
            old_fct, old_goodput = legacy_end_to_end_impact(
                row.overhead_bytes,
                packet_payload_bytes=row.packet_size - 54,
            )
            assert row.fct_ratio == old_fct
            assert row.goodput_ratio == old_goodput


class TestEngineAgreement:
    def _spec(self):
        trace = generate_trace(7, TraceConfig(num_flows=40))
        return SimulationSpec.from_trace(trace, uniform_path(5), 96)

    def test_batch_matches_analytic_within_tolerance(self):
        spec = self._spec()
        analytic = AnalyticEngine().evaluate(spec)
        batch = BatchEngine().evaluate(spec)
        assert batch.num_packets == analytic.num_packets
        assert batch.wire_bytes == analytic.wire_bytes
        for a, b in zip(analytic.fct_us, batch.fct_us):
            assert b == pytest.approx(a, rel=BATCH_REL_TOLERANCE)
        for a, b in zip(analytic.goodput_gbps, batch.goodput_gbps):
            assert b == pytest.approx(a, rel=BATCH_REL_TOLERANCE)

    def test_exact_close_to_analytic_on_shared_support(self):
        # Messages dividing evenly into packets: the closed form is
        # exact, so the DES must land on the same FCT.
        flows = [TraceFlow(i, 0.0, 1024 * (i + 1)) for i in range(6)]
        spec = SimulationSpec.from_trace(
            flows, uniform_path(4), 0, packet_payload_bytes=1024
        )
        exact = ExactEngine().evaluate(spec)
        analytic = AnalyticEngine().evaluate(spec)
        for a, e in zip(analytic.fct_us, exact.fct_us):
            assert e == pytest.approx(a, rel=1e-9)

    def test_engines_agree_on_plan_specs(self):
        from repro.baselines import Ffl
        from repro.network.generators import random_wan
        from repro.workloads import real_programs

        network = random_wan(10, 16, seed=2)
        plan = Ffl().deploy(real_programs(8), network).plan
        spec = SimulationSpec.from_plan(plan, network)
        analytic = AnalyticEngine().evaluate(spec)
        batch = BatchEngine().evaluate(spec)
        assert batch.fct_ratio == pytest.approx(
            analytic.fct_ratio, rel=BATCH_REL_TOLERANCE
        )
        assert batch.goodput_ratio == pytest.approx(
            analytic.goodput_ratio, rel=BATCH_REL_TOLERANCE
        )


class TestResultAggregates:
    def test_ratios_and_aggregates(self):
        spec = SimulationSpec.uniform_sweep(
            (0, 100), message_bytes=102_400
        )
        result = AnalyticEngine().evaluate(spec)
        assert result.num_flows == 2
        assert result.fct_ratios[0] == 1.0
        assert result.fct_ratios[1] > 1.0
        assert result.fct_ratio == max(result.fct_ratios)
        assert result.goodput_ratio == min(result.goodput_ratios)
        assert result.mean_fct_us == sum(result.fct_us) / 2
        assert result.total_wire_bytes == sum(result.wire_bytes)

    def test_p99_matches_trace_convention(self):
        spec = SimulationSpec.from_trace(
            generate_trace(1, TraceConfig(num_flows=101)),
            uniform_path(5),
            0,
        )
        result = AnalyticEngine().evaluate(spec)
        ordered = sorted(result.fct_us)
        assert result.p99_fct_us == ordered[min(100, int(0.99 * 101))]


class TestEngineRegistry:
    def test_registry_names(self):
        # get_engine lazily registers plugin engines (contention) on
        # first lookup; force that before inspecting the registry.
        get_engine("contention")
        assert set(ENGINES) == {"exact", "analytic", "batch", "contention"}
        assert DEFAULT_ENGINE == "analytic"

    def test_get_engine_resolves_names(self):
        for name, cls in ENGINES.items():
            engine = get_engine(name)
            assert isinstance(engine, cls)
            assert engine.name == name

    def test_get_engine_passes_instances_through(self):
        engine = AnalyticEngine()
        assert get_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("quantum")

    def test_base_engine_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Engine()._evaluate(SimulationSpec.uniform(0))


class TestTelemetry:
    def test_evaluate_emits_sim_event(self):
        spec = SimulationSpec.uniform_sweep((0, 48))
        recorder = Recorder()
        with attached(recorder):
            BatchEngine().evaluate(spec)
        events = [
            e for e in recorder.events if e["kind"] == "sim.evaluate"
        ]
        assert len(events) == 1
        (event,) = events
        assert event["engine"] == "batch"
        assert event["flows"] == 2
        assert event["source"] == "uniform-sweep"
        assert event["wall_s"] >= 0.0

    def test_result_records_engine_and_wall(self):
        result = ExactEngine().evaluate(SimulationSpec.uniform(16))
        assert result.engine == "exact"
        assert result.wall_s > 0.0
