"""Content-addressed on-disk cache of deployment records.

Entries are keyed by the SHA-256 fingerprint from
:mod:`repro.experiments.runner.cache_key` and stored as small JSON
files (``<root>/<k[:2]>/<key>.json``), so repeated sweep points and
re-runs of an experiment return :class:`DeploymentRecord` objects
without re-solving anything.  Writes are atomic (temp file +
``os.replace``), making the cache safe to share between concurrent
runs; corrupt or version-skewed entries read as misses.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.experiments.harness import DeploymentRecord
from repro.experiments.runner.cache_key import CACHE_KEY_VERSION


class ResultCache:
    """A directory of cached :class:`DeploymentRecord` results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[DeploymentRecord]:
        """The cached record for ``key``, or None on a miss."""
        entry = self.get_entry(key)
        return entry[0] if entry is not None else None

    def get_entry(
        self, key: str
    ) -> Optional[Tuple[DeploymentRecord, Optional[dict]]]:
        """The cached ``(record, plan_document)`` pair, or None.

        The plan document is the canonical ``repro.plan`` serialization
        stored by :meth:`put` (None for entries cached without one);
        reconstruct with :func:`repro.plan.plan_from_dict`.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("version") != CACHE_KEY_VERSION:
            self.misses += 1
            return None
        fields = payload.get("record")
        try:
            record = DeploymentRecord(**fields)
        except TypeError:
            self.misses += 1
            return None
        self.hits += 1
        return record, payload.get("plan")

    def put(
        self,
        key: str,
        record: DeploymentRecord,
        plan: Optional[dict] = None,
    ) -> Path:
        """Store ``record`` (and optionally its serialized plan) under
        ``key`` (atomic replace)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_KEY_VERSION,
            "key": key,
            "record": dataclasses.asdict(record),
            "plan": plan,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink()
            removed += 1
        return removed
