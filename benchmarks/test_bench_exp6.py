"""Benchmark: Exp#6 — switch resource consumption of coordination."""

from repro.experiments.exp6_resources import ground_truth_units, main, run


def test_bench_exp6_resources(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    from conftest import record_report

    record_report(main(rows))

    truth = ground_truth_units(10)
    assert rows[0].total_stage_units == truth
    for row in rows[1:]:
        # The paper's finding: coordination adds no switch resources;
        # merging can only reduce consumption.
        assert row.extra_vs_ground_truth <= 1e-9
