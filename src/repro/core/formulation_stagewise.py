"""The literal stage-granular P#1: decision variables ``x(a, i, u)``.

:mod:`repro.core.formulation` solves placement at switch granularity
and recovers stages with a list scheduler — fast, but the stage layout
is heuristic.  This module implements the paper's formulation exactly
as written, with one binary per (MAT, stage, switch):

* node deployment (Eq. 6): every MAT on exactly one stage;
* intra-switch ordering (Eq. 8): ``rho_end(a) < rho_begin(b)`` through
  a big-M linearization of the stage-index expressions;
* per-stage resource capacity (Eq. 9);
* the overhead objective (Eq. 1) through the standard product
  linearization.

The model has ``|V| * C_stage * |switches|`` binaries, so it is only
tractable for small instances — which is precisely its role here: an
oracle that certifies the scalable two-level pipeline (switch MILP +
list scheduler) loses nothing on instances small enough to check.
MATs whose demand exceeds one stage's capacity are out of scope (the
paper's spanning ``R(a, i, u)`` would need fractional spreading
variables); use the two-level pipeline for those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import DeploymentError, DeploymentPlan, MatPlacement
from repro.core.formulation import select_candidates
from repro.milp.expr import LinExpr
from repro.milp.model import Model, Var
from repro.milp.branch_bound import DEFAULT_PROFILE, BranchBoundSolver
from repro.network.paths import Path, PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class StagewiseMilp:
    """Exact stage-granular deployment (small instances only).

    Args:
        epsilon2: Occupied-switch bound (Eq. 5).
        time_limit_s: Branch & bound budget.
        max_candidates: Candidate-switch cap.
        solver_profile: Branch & bound search profile.
    """

    def __init__(
        self,
        epsilon2: Optional[int] = None,
        time_limit_s: float = 120.0,
        max_candidates: Optional[int] = 3,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        self.epsilon2 = epsilon2
        self.time_limit_s = time_limit_s
        self.max_candidates = max_candidates
        self.solver_profile = solver_profile
        self.last_solution = None

    def deploy(
        self,
        tdg: Tdg,
        network: Network,
        paths: Optional[PathEnumerator] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> DeploymentPlan:
        paths = paths or PathEnumerator(network)
        cand = list(
            candidates
            if candidates is not None
            else select_candidates(
                tdg, network, paths, self.max_candidates, self.epsilon2
            )
        )
        for u in cand:
            switch = network.switch(u)
            for mat in tdg.mats:
                if mat.resource_demand > switch.stage_capacity:
                    raise DeploymentError(
                        f"MAT {mat.name!r} (demand "
                        f"{mat.resource_demand:.2f}) exceeds one stage "
                        f"of {u!r}; stage-granular P#1 does not model "
                        "stage spanning"
                    )

        model, x, stage_count = self._build(tdg, network, cand)
        solution = BranchBoundSolver(
            time_limit_s=self.time_limit_s, profile=self.solver_profile
        ).solve(model)
        self.last_solution = solution
        if not solution.status.has_solution:
            raise DeploymentError(
                f"stagewise MILP failed: {solution.status.value}"
            )
        return self._decode(tdg, network, paths, cand, x, stage_count, solution)

    # ------------------------------------------------------------------
    def _build(
        self, tdg: Tdg, network: Network, cand: List[str]
    ) -> Tuple[Model, Dict[Tuple[str, int, str], Var], Dict[str, int]]:
        model = Model("P1_stagewise")
        mats = tdg.node_names
        stage_count = {u: network.switch(u).num_stages for u in cand}

        x: Dict[Tuple[str, int, str], Var] = {}
        for a in mats:
            for u in cand:
                for i in range(1, stage_count[u] + 1):
                    x[(a, i, u)] = model.add_binary(f"x[{a},{i},{u}]")

        # Eq. 6 (tightened to exactly-one placement).
        for a in mats:
            model.add_constr(
                LinExpr.total(
                    x[(a, i, u)]
                    for u in cand
                    for i in range(1, stage_count[u] + 1)
                )
                == 1,
                name=f"place[{a}]",
            )

        # Eq. 9: per-stage capacity.
        for u in cand:
            capacity = network.switch(u).stage_capacity
            for i in range(1, stage_count[u] + 1):
                model.add_constr(
                    LinExpr.total(
                        x[(a, i, u)] * tdg.node(a).resource_demand
                        for a in mats
                    )
                    <= capacity,
                    name=f"cap[{u},{i}]",
                )

        def on_switch(a: str, u: str) -> LinExpr:
            return LinExpr.total(
                x[(a, i, u)] for i in range(1, stage_count[u] + 1)
            )

        def stage_index(a: str, u: str) -> LinExpr:
            return LinExpr.total(
                x[(a, i, u)] * float(i)
                for i in range(1, stage_count[u] + 1)
            )

        # Eq. 8: ordering on a shared switch, big-M over co-location.
        for edge in tdg.edges:
            a, b = edge.upstream, edge.downstream
            for u in cand:
                big_m = stage_count[u] + 1
                model.add_constr(
                    stage_index(a, u) + 1
                    <= stage_index(b, u)
                    + big_m * (2 - on_switch(a, u) - on_switch(b, u)),
                    name=f"order[{a},{b},{u}]",
                )

        # Eq. 5: occupied switches.
        occ = {u: model.add_binary(f"occ[{u}]") for u in cand}
        for u in cand:
            for a in mats:
                model.add_constr(occ[u] >= on_switch(a, u))
        if self.epsilon2 is not None:
            model.add_constr(
                LinExpr.total(occ.values()) <= self.epsilon2, name="eps2"
            )

        # Eq. 1: linearized per-pair overhead max.
        a_max = model.add_var("A_max", lb=0.0)
        pair_terms: Dict[Tuple[str, str], List[LinExpr]] = {}
        for edge in tdg.edges:
            if edge.metadata_bytes <= 0:
                continue
            for u in cand:
                for v in cand:
                    if u == v:
                        continue
                    z = model.add_binary(
                        f"z[{edge.upstream},{edge.downstream},{u},{v}]"
                    )
                    model.add_constr(
                        z
                        >= on_switch(edge.upstream, u)
                        + on_switch(edge.downstream, v)
                        - 1
                    )
                    pair_terms.setdefault((u, v), []).append(
                        LinExpr.from_term(z, float(edge.metadata_bytes))
                    )
        for pair, terms in pair_terms.items():
            model.add_constr(
                a_max >= LinExpr.total(terms), name=f"amax[{pair}]"
            )
        model.minimize(a_max)
        return model, x, stage_count

    # ------------------------------------------------------------------
    def _decode(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
        cand: List[str],
        x: Dict[Tuple[str, int, str], Var],
        stage_count: Dict[str, int],
        solution,
    ) -> DeploymentPlan:
        placements: Dict[str, MatPlacement] = {}
        for a in tdg.node_names:
            located = None
            for u in cand:
                for i in range(1, stage_count[u] + 1):
                    if solution.rounded(x[(a, i, u)]) == 1:
                        located = MatPlacement(a, u, (i,))
            if located is None:
                raise DeploymentError(f"solver left MAT {a!r} unplaced")
            placements[a] = located
        plan = DeploymentPlan(tdg, network, placements)
        routing: Dict[Tuple[str, str], Path] = {}
        for pair in plan.pair_metadata_bytes():
            path = paths.shortest(*pair)
            if path is None:
                raise DeploymentError(f"no path for pair {pair}")
            routing[pair] = path
        plan = plan.with_routing(routing)
        plan.validate()
        return plan
