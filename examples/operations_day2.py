#!/usr/bin/env python3
"""Day-2 operations: packets, rules and a switch failure.

Deploys a flow-counting program across a line of small switches, then
walks through the runtime story a network operator lives with:

1. push packets through the deployment with the executable interpreter
   and watch the metadata piggyback across switches;
2. install runtime rules through the controller (with capacity
   accounting and an audit log);
3. fail the busiest switch and let the migration planner re-deploy,
   reporting which MATs move and what the new byte overhead is.

Run:  python examples/operations_day2.py
"""

from repro.control import Controller, MigrationPlanner
from repro.core import Hermes
from repro.dataplane import (
    Mat,
    Program,
    counter_update,
    hash_compute,
    metadata_field,
    modify,
    standard_headers,
)
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.network import linear_topology
from repro.simulation import PlanInterpreter


def build_program() -> Program:
    hdr = standard_headers()
    idx = metadata_field("fc.idx", 32)
    cnt = metadata_field("fc.cnt", 32)
    return Program(
        "flow_counter",
        [
            Mat(
                "hash",
                match_fields=[hdr["ipv4.protocol"]],
                actions=[
                    hash_compute(
                        idx, [hdr["ipv4.src_addr"], hdr["ipv4.dst_addr"]]
                    )
                ],
                capacity=16,
                resource_demand=0.6,
            ),
            Mat(
                "count",
                match_fields=[idx],
                actions=[counter_update(idx, cnt)],
                capacity=1024,
                resource_demand=0.9,
            ),
            Mat(
                "mark",
                match_fields=[cnt],
                actions=[modify(hdr["ipv4.dscp"], [cnt])],
                capacity=16,
                resource_demand=0.5,
            ),
        ],
    )


def main() -> None:
    # A ring survives any single switch failure; a line would not.
    network = linear_topology(4, num_stages=1, stage_capacity=1.0)
    network.connect("s3", "s0", latency_ms=0.001)
    result = Hermes().deploy([build_program()], network)
    plan = result.plan
    print(
        f"deployed across {plan.occupied_switches()} "
        f"(A_max = {plan.max_metadata_bytes()} B)\n"
    )

    # 1. Packets through the interpreter.
    interpreter = PlanInterpreter(plan)
    packet = {
        "ipv4.src_addr": 0x0A000001,
        "ipv4.dst_addr": 0x0A000002,
        "ipv4.protocol": 6,
    }
    for i in range(3):
        trace = interpreter.run_packet(dict(packet))
    print(
        f"3 packets of one flow -> counter={trace.final_fields['fc.cnt']}, "
        f"dscp mark={trace.final_fields['ipv4.dscp']}"
    )
    print(f"  visit order: {' -> '.join(trace.visited_switches)}")

    # 2. Runtime rules through the controller.
    controller = Controller(plan)
    switch, stages = controller.resolve("flow_counter.hash")
    print(f"\ncontroller: flow_counter.hash lives on {switch} stages {stages}")
    controller.install_rule(
        "flow_counter.hash",
        Rule(
            matches=(MatchSpec("ipv4.protocol", MatchKind.EXACT, 17),),
            action_name="hash_fc_idx",
        ),
    )
    occupancy = controller.occupancy_report()["flow_counter.hash"]
    print(f"  installed UDP rule; table occupancy {occupancy[0]}/{occupancy[1]}")

    # 3. Fail the counting switch; migrate.
    victim = plan.switch_of("flow_counter.count")
    installed = {
        name: controller.rules_to_replay(name) for name in plan.placements
    }
    diff = MigrationPlanner().handle_switch_failure(
        plan, victim, installed_rules=installed
    )
    print(f"\nswitch {victim} failed:")
    for move in diff.moves:
        source = move.source or "(failed switch)"
        print(
            f"  move {move.mat_name}: {source} -> {move.destination} "
            f"({move.rules_to_replay} rules to replay)"
        )
    print(
        f"  overhead {diff.old_overhead_bytes} B -> "
        f"{diff.new_overhead_bytes} B, disruption "
        f"{diff.disruption:.0%}"
    )


if __name__ == "__main__":
    main()
