"""Benchmark: Exp#2 (Fig. 6) — per-packet byte overhead at scale."""

from repro.experiments.exp2_overhead import main, pivot


def test_bench_exp2_overhead(benchmark, exp2_points):
    points = exp2_points

    def summarize():
        return pivot(points, "overhead_bytes", "Fig. 6")

    benchmark.pedantic(summarize, rounds=3, iterations=1)
    from conftest import record_report

    record_report(main(points))

    by_framework = {}
    for point in points:
        by_framework.setdefault(point.record.framework, []).append(
            point.record.overhead_bytes
        )
    # Paper shape: Hermes has the lowest overhead of the non-exact
    # frameworks on every topology; FFL/FFLS are the worst offenders.
    for i in range(len(by_framework["Hermes"])):
        hermes = by_framework["Hermes"][i]
        assert hermes <= by_framework["FFL"][i]
        assert hermes <= by_framework["FFLS"][i]
        assert hermes <= by_framework["MS"][i]
