"""SPEED (Chen et al., ICNP'20).

SPEED pioneered network-wide deployment: it merges input programs into
one TDG (eliminating redundant MATs) and solves an ILP that optimizes
packet-processing performance.  We model its objective as minimizing
the end-to-end transmission latency ``t_e2e`` — the performance term of
its formulation — with no awareness of coordination bytes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.baselines.base import (
    DeploymentFramework,
    build_switch_chain,
    route_all_pairs,
    schedule_on_chain,
)
from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.formulation import OBJECTIVE_LATENCY, MilpFormulation
from repro.dataplane.program import Program
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.milp.solution import SolveStatus
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg


class Speed(DeploymentFramework):
    """The SPEED baseline: merged TDG, latency-minimizing ILP."""

    name = "SPEED"
    merges = True
    objective = OBJECTIVE_LATENCY

    def __init__(
        self,
        time_limit_s: float = 30.0,
        max_candidates: Optional[int] = 8,
        epsilon2: Optional[int] = None,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        self.time_limit_s = time_limit_s
        self.max_candidates = max_candidates
        self.epsilon2 = epsilon2
        self.solver_profile = solver_profile

    def _formulation(self) -> MilpFormulation:
        return MilpFormulation(
            objective=self.objective,
            epsilon1=math.inf,
            epsilon2=self.epsilon2,
            max_candidates=self.max_candidates,
            time_limit_s=self.time_limit_s,
            solver_profile=self.solver_profile,
        )

    def _place(
        self,
        tdg: Tdg,
        programs: Sequence[Program],
        network: Network,
        paths: PathEnumerator,
    ) -> Tuple[DeploymentPlan, bool]:
        formulation = self._formulation()
        try:
            plan = formulation.deploy(tdg, network, paths)
        except DeploymentError:
            # The ILP ran out of budget without even an incumbent — the
            # paper's ">2 hours" regime.  Deploy with an
            # objective-consistent greedy (compact placement on the
            # closest chain of switches) and flag the timeout.
            return self._fallback(tdg, network, paths), True
        solution = formulation.last_solution
        timed_out = bool(
            solution is not None
            and solution.status
            in (SolveStatus.FEASIBLE, SolveStatus.TIME_LIMIT)
        )
        return plan, timed_out

    def _fallback(
        self, tdg: Tdg, network: Network, paths: PathEnumerator
    ) -> DeploymentPlan:
        chain = build_switch_chain(network, paths)
        # Level (Kahn) order packs each pipeline level densely — the
        # compact placement a latency/device-count objective drives —
        # and, like the real frameworks, is blind to which metadata
        # edges the switch boundaries cut.
        order = tdg.topological_order(strategy="kahn")
        placements = schedule_on_chain(tdg, order, network, chain)
        plan = route_all_pairs(DeploymentPlan(tdg, network, placements), paths)
        plan.validate()
        return plan
