"""Disruption metrics over one reconciled scenario.

The :class:`DisruptionReport` answers the operational questions the
paper's static experiments can't: when the network churns under a live
deployment, *how much does each event hurt*?  It aggregates the
reconciler's per-batch :class:`~repro.runtime.reconciler.EventOutcome`
records into:

* MAT moves (forced vs optimization) and rules replayed per event;
* which escalation rung served each batch (warm incremental repair,
  cold full replan, cheapest patch) plus the retry cost (attempts,
  virtual backoff) the ladder paid;
* the per-pair byte-overhead trajectory over virtual time, including
  the transient migration windows where both placements coexist;
* time-to-converge per event (replan latency plus retry backoff);
* the fraction of events whose replan *degraded* vs *improved*
  ``A_max`` relative to the pre-event plan.

The report is a plain serializable value: ``to_dict``/``from_dict``
round-trip it through JSON, and :meth:`render` pretty-prints the event
table for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.experiments.reporting import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.reconciler import ReconcileResult

REPORT_SCHEMA = "repro.disruption/v1"


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of the byte-overhead trajectory.

    ``transient`` marks the migration window sample: the worst-pair
    overhead while old and new placements coexist, always >= both
    steady-state neighbors.
    """

    time_s: float
    amax_bytes: int
    transient: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "amax_bytes": self.amax_bytes,
            "transient": self.transient,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TrajectoryPoint":
        return cls(
            time_s=float(doc["time_s"]),
            amax_bytes=int(doc["amax_bytes"]),
            transient=bool(doc.get("transient", False)),
        )


@dataclass
class DisruptionReport:
    """Aggregated disruption metrics for one scenario run."""

    scenario_name: str
    scenario_seed: int
    scenario_fingerprint: str
    history_digest: str
    num_events: int
    num_batches: int
    num_converged: int
    plan_versions: int
    forced_moves: int
    optimization_moves: int
    rules_replayed: int
    degraded_batches: int
    improved_batches: int
    neutral_batches: int
    incremental_batches: int
    full_batches: int
    patch_batches: int
    total_attempts: int
    total_backoff_s: float
    mean_convergence_s: float
    max_convergence_s: float
    initial_amax_bytes: int
    final_amax_bytes: int
    peak_transient_amax_bytes: int
    trajectory: List[TrajectoryPoint] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Traffic impact (set by :meth:`attach_traffic`): FCT inflation of
    #: the scalar end-to-end model evaluated over the A_max trajectory,
    #: including the transient-coexistence windows.  ``traffic_engine``
    #: is empty until attached.  When the contention engine priced the
    #: trajectory, ``traffic_load`` records the offered bottleneck
    #: utilization (0.0 = independent-flow engine, no queueing) and the
    #: fct ratios include the metadata's queueing amplification — the
    #: congestion columns.
    traffic_engine: str = ""
    traffic_load: float = 0.0
    initial_fct_ratio: float = 1.0
    final_fct_ratio: float = 1.0
    peak_transient_fct_ratio: float = 1.0

    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: "ReconcileResult") -> "DisruptionReport":
        """Fold a reconciler run into the report."""
        outcomes = result.outcomes
        versions = result.store.versions
        initial = versions[0]
        trajectory: List[TrajectoryPoint] = [
            TrajectoryPoint(0.0, initial.plan.max_metadata_bytes())
        ]
        rows: List[Dict[str, Any]] = []
        converged = [o for o in outcomes if o.converged]
        for outcome in outcomes:
            rows.append(outcome.to_dict())
            if outcome.converged:
                if outcome.transient_amax_bytes:
                    trajectory.append(
                        TrajectoryPoint(
                            outcome.time_s,
                            outcome.transient_amax_bytes,
                            transient=True,
                        )
                    )
                trajectory.append(
                    TrajectoryPoint(
                        outcome.time_s + outcome.convergence_time_s,
                        outcome.new_amax_bytes,
                    )
                )
        degraded = sum(1 for o in converged if o.amax_delta_bytes > 0)
        improved = sum(1 for o in converged if o.amax_delta_bytes < 0)
        times = [o.convergence_time_s for o in converged]
        latest = result.store.latest
        assert latest is not None
        return cls(
            scenario_name=result.scenario.name,
            scenario_seed=result.scenario.seed,
            scenario_fingerprint=result.scenario.fingerprint(),
            history_digest=result.store.history_digest(),
            num_events=len(result.scenario.events),
            num_batches=len(outcomes),
            num_converged=len(converged),
            plan_versions=len(versions),
            forced_moves=sum(o.forced_moves for o in converged),
            optimization_moves=sum(
                o.optimization_moves for o in converged
            ),
            rules_replayed=sum(o.rules_replayed for o in converged),
            degraded_batches=degraded,
            improved_batches=improved,
            neutral_batches=len(converged) - degraded - improved,
            incremental_batches=sum(
                1 for o in converged if o.rung == "incremental"
            ),
            full_batches=sum(1 for o in converged if o.rung == "full"),
            patch_batches=sum(1 for o in converged if o.rung == "patch"),
            total_attempts=sum(o.attempts for o in outcomes),
            total_backoff_s=sum(o.backoff_s for o in outcomes),
            mean_convergence_s=(
                sum(times) / len(times) if times else 0.0
            ),
            max_convergence_s=max(times, default=0.0),
            initial_amax_bytes=initial.plan.max_metadata_bytes(),
            final_amax_bytes=latest.plan.max_metadata_bytes(),
            peak_transient_amax_bytes=max(
                (o.transient_amax_bytes for o in converged), default=0
            ),
            trajectory=trajectory,
            rows=rows,
        )

    # ------------------------------------------------------------------
    @property
    def moves(self) -> int:
        return self.forced_moves + self.optimization_moves

    @property
    def degraded_fraction(self) -> float:
        """Fraction of converged batches whose replan raised ``A_max``."""
        return (
            self.degraded_batches / self.num_converged
            if self.num_converged
            else 0.0
        )

    @property
    def improved_fraction(self) -> float:
        return (
            self.improved_batches / self.num_converged
            if self.num_converged
            else 0.0
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "scenario_name": self.scenario_name,
            "scenario_seed": self.scenario_seed,
            "scenario_fingerprint": self.scenario_fingerprint,
            "history_digest": self.history_digest,
            "num_events": self.num_events,
            "num_batches": self.num_batches,
            "num_converged": self.num_converged,
            "plan_versions": self.plan_versions,
            "forced_moves": self.forced_moves,
            "optimization_moves": self.optimization_moves,
            "rules_replayed": self.rules_replayed,
            "degraded_batches": self.degraded_batches,
            "improved_batches": self.improved_batches,
            "neutral_batches": self.neutral_batches,
            "incremental_batches": self.incremental_batches,
            "full_batches": self.full_batches,
            "patch_batches": self.patch_batches,
            "total_attempts": self.total_attempts,
            "total_backoff_s": self.total_backoff_s,
            "mean_convergence_s": self.mean_convergence_s,
            "max_convergence_s": self.max_convergence_s,
            "initial_amax_bytes": self.initial_amax_bytes,
            "final_amax_bytes": self.final_amax_bytes,
            "peak_transient_amax_bytes": self.peak_transient_amax_bytes,
            "trajectory": [p.to_dict() for p in self.trajectory],
            "rows": self.rows,
            "traffic_engine": self.traffic_engine,
            "traffic_load": self.traffic_load,
            "initial_fct_ratio": self.initial_fct_ratio,
            "final_fct_ratio": self.final_fct_ratio,
            "peak_transient_fct_ratio": self.peak_transient_fct_ratio,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DisruptionReport":
        schema = doc.get("schema")
        if schema != REPORT_SCHEMA:
            raise ValueError(
                f"expected schema {REPORT_SCHEMA!r}, got {schema!r}"
            )
        return cls(
            scenario_name=doc["scenario_name"],
            scenario_seed=int(doc["scenario_seed"]),
            scenario_fingerprint=doc["scenario_fingerprint"],
            history_digest=doc["history_digest"],
            num_events=int(doc["num_events"]),
            num_batches=int(doc["num_batches"]),
            num_converged=int(doc["num_converged"]),
            plan_versions=int(doc["plan_versions"]),
            forced_moves=int(doc["forced_moves"]),
            optimization_moves=int(doc["optimization_moves"]),
            rules_replayed=int(doc["rules_replayed"]),
            degraded_batches=int(doc["degraded_batches"]),
            improved_batches=int(doc["improved_batches"]),
            neutral_batches=int(doc["neutral_batches"]),
            # Rung accounting shipped after v1 docs existed; default
            # pre-ladder documents to all-full histories.
            incremental_batches=int(doc.get("incremental_batches", 0)),
            full_batches=int(
                doc.get("full_batches", doc["num_converged"])
            ),
            patch_batches=int(doc.get("patch_batches", 0)),
            total_attempts=int(doc.get("total_attempts", 0)),
            total_backoff_s=float(doc.get("total_backoff_s", 0.0)),
            mean_convergence_s=float(doc["mean_convergence_s"]),
            max_convergence_s=float(doc["max_convergence_s"]),
            initial_amax_bytes=int(doc["initial_amax_bytes"]),
            final_amax_bytes=int(doc["final_amax_bytes"]),
            peak_transient_amax_bytes=int(
                doc["peak_transient_amax_bytes"]
            ),
            trajectory=[
                TrajectoryPoint.from_dict(p)
                for p in doc.get("trajectory", [])
            ],
            rows=list(doc.get("rows", [])),
            traffic_engine=str(doc.get("traffic_engine", "")),
            traffic_load=float(doc.get("traffic_load", 0.0)),
            initial_fct_ratio=float(doc.get("initial_fct_ratio", 1.0)),
            final_fct_ratio=float(doc.get("final_fct_ratio", 1.0)),
            peak_transient_fct_ratio=float(
                doc.get("peak_transient_fct_ratio", 1.0)
            ),
        )

    # ------------------------------------------------------------------
    def attach_traffic(
        self,
        engine: str = "analytic",
        packet_payload_bytes: int = 1024,
        load: Optional[float] = None,
        flows: int = 64,
    ) -> "DisruptionReport":
        """Evaluate FCT inflation over the A_max trajectory.

        Every distinct overhead level the scenario visited — steady
        states *and* the transient-coexistence windows where old and
        new placements piggyback metadata simultaneously — is pushed
        through the end-to-end traffic model
        (:func:`repro.simulation.engine.overhead_impact`) with the
        chosen engine.  Per-batch rows gain ``fct_ratio`` /
        ``transient_fct_ratio`` keys and the report gains the
        initial/final/peak-transient summary columns.

        A ``load`` (or ``engine="contention"``) switches to the
        congestion model: ``flows`` copies of the message share the
        uniform path's output queue at that utilization, so the ratios
        price the metadata's *queueing amplification* on top of its
        pipeline tax and ``traffic_load`` records the knob.  Returns
        ``self`` (mutated) for chaining.
        """
        from repro.simulation.engine import get_engine, overhead_impact

        population = 1
        if load is not None or engine == "contention":
            from repro.simulation.contention import ContentionEngine

            resolved = ContentionEngine(load=load)
            population = flows
        else:
            resolved = get_engine(engine)
        cache: Dict[int, float] = {}

        def inflation(amax_bytes: int) -> float:
            if amax_bytes not in cache:
                cache[amax_bytes] = overhead_impact(
                    amax_bytes,
                    packet_payload_bytes=packet_payload_bytes,
                    engine=resolved,
                    flows=population,
                )[0]
            return cache[amax_bytes]

        for row in self.rows:
            if row.get("converged"):
                row["fct_ratio"] = inflation(int(row["new_amax_bytes"]))
                row["transient_fct_ratio"] = inflation(
                    int(row["transient_amax_bytes"])
                )
        self.traffic_engine = resolved.name
        if population > 1:
            from repro.simulation.contention import DEFAULT_LOAD

            self.traffic_load = (
                load if load is not None else DEFAULT_LOAD
            )
        else:
            self.traffic_load = 0.0
        self.initial_fct_ratio = inflation(self.initial_amax_bytes)
        self.final_fct_ratio = inflation(self.final_amax_bytes)
        self.peak_transient_fct_ratio = max(
            (
                inflation(point.amax_bytes)
                for point in self.trajectory
                if point.transient
            ),
            default=inflation(self.peak_transient_amax_bytes),
        )
        return self

    @property
    def has_traffic(self) -> bool:
        """Whether :meth:`attach_traffic` populated the FCT columns."""
        return bool(self.traffic_engine)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The CLI-facing text report: summary lines + event table."""
        lines = [
            f"Scenario {self.scenario_name!r} "
            f"(seed {self.scenario_seed}): "
            f"{self.num_events} events in {self.num_batches} batches, "
            f"{self.num_converged} converged, "
            f"{self.plan_versions} plan versions",
            f"Moves: {self.forced_moves} forced + "
            f"{self.optimization_moves} optimization "
            f"({self.rules_replayed} rules replayed)",
            f"A_max: {self.initial_amax_bytes} B -> "
            f"{self.final_amax_bytes} B "
            f"(peak transient {self.peak_transient_amax_bytes} B)",
            f"Replans: {self.degraded_batches} degraded / "
            f"{self.improved_batches} improved / "
            f"{self.neutral_batches} neutral; "
            f"convergence mean {self.mean_convergence_s * 1e3:.1f} ms, "
            f"max {self.max_convergence_s * 1e3:.1f} ms",
            f"Rungs: {self.incremental_batches} incremental / "
            f"{self.full_batches} full / {self.patch_batches} patch; "
            f"{self.total_attempts} attempts, "
            f"backoff {self.total_backoff_s:.1f} s",
            f"History digest: {self.history_digest[:16]}...",
        ]
        if self.has_traffic:
            congestion = (
                f" at load {self.traffic_load:.2f}"
                if self.traffic_load
                else ""
            )
            lines.append(
                f"Traffic impact ({self.traffic_engine} engine"
                f"{congestion}): "
                f"FCT x{self.initial_fct_ratio:.4f} -> "
                f"x{self.final_fct_ratio:.4f} "
                f"(peak transient x{self.peak_transient_fct_ratio:.4f})"
            )
        lines.append("")
        headers = [
            "batch", "t (s)", "events", "converged", "rung", "tries",
            "forced", "opt", "rules", "A_max (B)", "transient (B)",
            "conv (ms)",
        ]
        if self.has_traffic:
            headers += ["FCT x", "transient FCT x"]
        table = Table(title="Per-batch disruption", headers=headers)
        for row in self.rows:
            cells = [
                row["batch_index"],
                f"{row['time_s']:.2f}",
                ",".join(e["kind"] for e in row["events"]),
                "yes" if row["converged"] else "NO",
                row.get("rung", "full"),
                row.get("attempts", 1),
                row["forced_moves"],
                row["optimization_moves"],
                row["rules_replayed"],
                row["new_amax_bytes"],
                row["transient_amax_bytes"],
                f"{row['convergence_time_s'] * 1e3:.1f}",
            ]
            if self.has_traffic:
                cells += [
                    (
                        f"{row['fct_ratio']:.4f}"
                        if "fct_ratio" in row
                        else "-"
                    ),
                    (
                        f"{row['transient_fct_ratio']:.4f}"
                        if "transient_fct_ratio" in row
                        else "-"
                    ),
                ]
            table.add_row(cells)
        lines.append(table.render())
        return "\n".join(lines)
