"""The ten Table III WAN topologies.

The paper evaluates on ten real-world WAN topologies from the Internet
Topology Zoo.  The zoo dataset is not available offline, so we generate
seeded random WANs matching Table III's node/edge counts — only the
graph structure enters the optimization, and the paper's own property
settings (50% programmable, ``t_s = 1 µs``, ``t_l`` ~ U(1 ms, 10 ms))
are applied on top, exactly as §VI-A describes.

Two entries of the published table are adjusted/filled:

* topology 5 is listed with 73 nodes and 70 edges, which cannot be
  connected; we use 72 edges (a spanning tree plus no slack is the
  closest connected graph);
* topologies 6 and 8 are illegible in our copy of the table; we fill
  them with counts interpolated from their neighbours (75/85, 71/88),
  keeping all ten in the same size band as the legible entries.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.generators import random_wan
from repro.network.topology import Network

#: Table III: topology id -> (num_nodes, num_edges).
TABLE_III_TOPOLOGIES: Dict[int, Tuple[int, int]] = {
    1: (79, 94),
    2: (70, 85),
    3: (74, 80),
    4: (66, 76),
    5: (73, 72),  # adjusted from (73, 70) for connectivity
    6: (75, 85),  # filled (illegible in source table)
    7: (68, 92),
    8: (71, 88),  # filled (illegible in source table)
    9: (74, 92),
    10: (69, 98),
}


def topology_zoo_wan(topology_id: int, seed_base: int = 1000) -> Network:
    """Build Table III topology ``topology_id`` (1-10).

    The RNG seed is derived from the topology id, so repeated calls
    yield identical networks — required for the 100-run averaging in
    the experiments to measure the same deployment problem each run.
    """
    try:
        nodes, edges = TABLE_III_TOPOLOGIES[topology_id]
    except KeyError:
        raise ValueError(
            f"topology_id must be 1..10, got {topology_id}"
        ) from None
    return random_wan(
        nodes,
        edges,
        seed=seed_base + topology_id,
        name=f"topozoo_{topology_id}",
    )
