"""Exp#2 (Fig. 6): per-packet byte overhead in the large-scale simulation.

50 concurrent programs (the 10 real switch.p4 slices plus 40 synthetic
programs with the §VI-A distribution) are deployed on each of the ten
Table III WAN topologies; the per-packet byte overhead of every
framework is reported per topology.

Exp#3 (execution time) and Exp#4 (end-to-end impact) read the same runs,
so :func:`run` is shared by all three experiment modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.harness import (
    DeploymentRecord,
    default_frameworks,
)
from repro.experiments.reporting import Table
from repro.milp.branch_bound import DEFAULT_PROFILE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner
from repro.network.topozoo import TABLE_III_TOPOLOGIES, topology_zoo_wan
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs

NUM_PROGRAMS = 50
TOPOLOGY_IDS = tuple(sorted(TABLE_III_TOPOLOGIES))


def workload(num_programs: int = NUM_PROGRAMS, seed: int = 7):
    """The Exp#2 workload: 10 real programs + synthetic fill."""
    reals = real_programs(min(num_programs, 10))
    remainder = max(num_programs - len(reals), 0)
    return reals + synthetic_programs(remainder, seed=seed)


@dataclass
class Exp2Point:
    """One (framework, topology) cell of Figs. 6-8."""

    topology_id: int
    record: DeploymentRecord


def run(
    topology_ids: Sequence[int] = TOPOLOGY_IDS,
    num_programs: int = NUM_PROGRAMS,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    seed: int = 7,
    ilp_time_limit_s: float = 10.0,
    runner: Optional["ExperimentRunner"] = None,
    solver_profile: str = DEFAULT_PROFILE,
) -> List[Exp2Point]:
    """Deploy the 50-program workload on each selected topology.

    The whole (framework x topology) sweep is one flat cell list, so a
    parallel ``runner`` overlaps deployments across topologies, not
    just within one; results are ordered and valued identically to the
    serial run.
    """
    from repro.experiments.runner import Cell, execute_cells

    programs = tuple(workload(num_programs, seed))
    cells: List[Cell] = []
    for topology_id in topology_ids:
        network = topology_zoo_wan(topology_id)
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=ilp_time_limit_s,
                per_program_ilp_time_limit_s=max(
                    ilp_time_limit_s / 20.0, 0.2
                ),
                solver_profile=solver_profile,
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    tag=topology_id,
                )
            )
    return [
        Exp2Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def pivot(
    points: List[Exp2Point], attr: str, title: str
) -> Table:
    """Framework x topology table of one record attribute."""
    ids = sorted({p.topology_id for p in points})
    names: List[str] = []
    for p in points:
        if p.record.framework not in names:
            names.append(p.record.framework)
    table = Table(title, ["framework"] + [f"topo{t}" for t in ids])
    for name in names:
        row: List = [name]
        for topology_id in ids:
            record = next(
                p.record
                for p in points
                if p.record.framework == name and p.topology_id == topology_id
            )
            row.append(getattr(record, attr))
        table.add_row(row)
    return table


def main(points: Optional[List[Exp2Point]] = None) -> str:
    points = points if points is not None else run()
    output = pivot(
        points, "overhead_bytes", "Fig. 6: per-packet byte overhead (B)"
    ).render()
    print(output)
    return output


if __name__ == "__main__":
    main()
