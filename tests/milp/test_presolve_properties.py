"""Hypothesis properties of the presolve pass.

Presolve is only allowed to *shrink the search space it hands the
solver, never the set of optimal answers*.  Over a generated universe
of small pure-integer models, these properties pin:

* **Optimum preservation** — presolve never excludes the oracle
  optimum: solving the reduction and adding the objective offset
  reproduces the brute-force optimum exactly.
* **Bounds only tighten** — every surviving variable's reduced domain
  is a subset of its original domain, and every fixed value lies
  inside the original domain.
* **Status preservation** — presolve declares INFEASIBLE only on
  models the oracle also finds infeasible, and an oracle-feasible
  model is never presolved to INFEASIBLE (OPTIMAL/INFEASIBLE is
  preserved end-to-end through the fast profile).

Models are built structurally from drawn coefficients (not from an
opaque seed), so failures shrink to minimal counterexamples.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from milp_testkit import enumerate_oracle
from repro.milp.branch_bound import solve
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.presolve import PresolveStatus, presolve
from repro.milp.solution import SolveStatus


@st.composite
def models(draw):
    """A small pure-integer model with bounded domains."""
    n = draw(st.integers(min_value=2, max_value=6))
    m = Model()
    xs = []
    for i in range(n):
        lo = draw(st.integers(min_value=-2, max_value=2))
        hi = lo + draw(st.integers(min_value=0, max_value=3))
        xs.append(m.add_integer(f"x{i}", lo, hi))
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        coefs = draw(
            st.lists(
                st.integers(min_value=-4, max_value=4),
                min_size=n,
                max_size=n,
            )
        )
        if not any(coefs):
            continue
        expr = LinExpr.total(c * x for c, x in zip(coefs, xs) if c)
        rhs = draw(st.integers(min_value=-10, max_value=10))
        sense = draw(st.sampled_from(("<=", ">=", "==")))
        if sense == "<=":
            m.add_constr(expr <= rhs)
        elif sense == ">=":
            m.add_constr(expr >= rhs)
        else:
            m.add_constr(expr == rhs)
    objective = LinExpr.total(
        draw(st.integers(min_value=-5, max_value=5)) * x for x in xs
    )
    if draw(st.booleans()):
        m.maximize(objective)
    else:
        m.minimize(objective)
    return m


@settings(max_examples=60, deadline=None)
@given(models())
def test_presolve_never_excludes_the_oracle_optimum(model):
    oracle = enumerate_oracle(model)
    pres = presolve(model)
    if oracle is None:
        # Nothing to preserve; infeasibility handling is pinned below.
        return
    assert pres.status != PresolveStatus.INFEASIBLE
    if pres.status == PresolveStatus.SOLVED:
        assert pres.objective_offset == pytest.approx(oracle, abs=1e-6)
        assert model.is_feasible(pres.lift_values({}))
        return
    inner = solve(pres.model, profile="classic")
    assert inner.status is SolveStatus.OPTIMAL
    assert inner.objective + pres.objective_offset == pytest.approx(
        oracle, abs=1e-6
    )
    assert model.is_feasible(pres.lift_values(inner.values))


@settings(max_examples=60, deadline=None)
@given(models())
def test_bounds_only_tighten(model):
    pres = presolve(model)
    if pres.status == PresolveStatus.INFEASIBLE:
        return
    for orig, reduced in pres.var_map.items():
        assert reduced.lb >= orig.lb - 1e-9
        assert reduced.ub <= orig.ub + 1e-9
        assert reduced.var_type == orig.var_type
    for orig, value in pres.fixed.items():
        assert orig.lb - 1e-9 <= value <= orig.ub + 1e-9
        assert value == float(round(value))  # integral vars fix to ints


@settings(max_examples=60, deadline=None)
@given(models())
def test_feasibility_status_is_preserved(model):
    oracle = enumerate_oracle(model)
    solution = solve(model, profile="fast")
    if oracle is None:
        assert solution.status is SolveStatus.INFEASIBLE
    else:
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(oracle, abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(models())
def test_lift_project_roundtrip_on_the_reduction(model):
    """project then lift restores any reduced-feasible assignment:
    free variables pass through, fixed variables reappear verbatim."""
    pres = presolve(model)
    if pres.status != PresolveStatus.REDUCED:
        return
    inner = solve(pres.model, profile="classic")
    if not inner.status.has_solution:
        return
    lifted = pres.lift_values(inner.values)
    reprojected = pres.project_values(lifted)
    assert reprojected == inner.values
    for var, value in pres.fixed.items():
        assert lifted[var] == value
