"""Parallel execution of experiment cells.

A *cell* is one (framework x deployment problem) unit of
:func:`repro.experiments.harness.run_deployment_suite`; the experiment
sweep loops (Exp#1/2/5) flatten their whole sweep into one cell list so
every deployment in an experiment can run concurrently, not just the
frameworks within one sweep point.

Guarantees, regardless of ``workers``:

* **Deterministic ordering** — results come back in submission order
  (``ProcessPoolExecutor.map`` with chunksize 1), so downstream tables
  and journals are reproducible.
* **Identical results** — each worker runs the exact serial code path
  (:func:`~repro.experiments.harness.run_single_deployment`); only
  wall-clock timings differ from a serial run.
* **Graceful serial fallback** — ``workers=1`` executes inline with no
  process pool (and shares a :class:`PathEnumerator` per network, like
  the historical serial harness).

Telemetry emitted inside a cell (solver and deploy events) is recorded
per cell — in a worker process the events travel back with the task
result — and written to the journal in cell order, so a journal from a
parallel run is line-for-line comparable to a serial one.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import CancelledError, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.base import DeploymentFramework
from repro.dataplane.program import Program
from repro.experiments.harness import DeploymentRecord, run_single_deployment
from repro.experiments.runner.cache import ResultCache
from repro.experiments.runner.cache_key import cache_key
from repro.experiments.runner.telemetry import JournalWriter
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.telemetry import Event, Recorder, attached


@dataclass
class Cell:
    """One (framework x deployment problem) unit of work.

    ``tag`` carries the sweep coordinate (e.g. topology id or program
    count) through the runner untouched, so experiments can regroup
    results without positional bookkeeping.
    """

    programs: Tuple[Program, ...]
    network: Network
    framework: DeploymentFramework
    packet_payload_bytes: int = 1024
    with_end_to_end: bool = True
    tag: Any = None

    def key(self) -> str:
        """Content hash naming this cell in the result cache."""
        return cache_key(
            self.programs,
            self.network,
            self.framework,
            {
                "packet_payload_bytes": self.packet_payload_bytes,
                "with_end_to_end": self.with_end_to_end,
            },
        )


@dataclass
class CellResult:
    """Outcome of one cell: the record plus its telemetry stream.

    ``plan`` is the canonical serialized deployment plan (see
    :mod:`repro.plan.serialize`) the cell produced — also what the
    result cache persists, so cache hits return it too.  Reconstruct
    with :func:`repro.plan.plan_from_dict`.
    """

    cell: Cell
    record: DeploymentRecord
    events: List[Event] = field(default_factory=list)
    cached: bool = False
    plan: Optional[dict] = None


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs of an :class:`ExperimentRunner` (CLI: ``--workers``,
    ``--cache-dir``, ``--journal``)."""

    workers: int = 1
    cache_dir: Optional[str] = None
    journal: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class RunnerInterrupted(RuntimeError):
    """A cell run was interrupted before every cell finished.

    Raised by :meth:`ExperimentRunner.run_cells` when a
    ``KeyboardInterrupt`` (or an outer cancellation) lands mid-run: the
    pool has already been shut down cleanly — pending cells cancelled,
    no workers left behind — and ``partial`` carries every
    :class:`CellResult` that completed (cache hits included), in
    submission order, so a caller can persist or report what it has.
    """

    def __init__(self, partial: List["CellResult"], total: int) -> None:
        super().__init__(
            f"interrupted with {len(partial)} of {total} cells complete"
        )
        self.partial = partial
        self.total = total


def _execute_cell(
    cell: Cell, paths: Optional[PathEnumerator] = None
) -> Tuple[DeploymentRecord, List[Event], dict]:
    """Run one cell, recording every telemetry event it emits."""
    recorder = Recorder()
    with attached(recorder):
        record, plan = run_single_deployment(
            cell.programs,
            cell.network,
            cell.framework,
            packet_payload_bytes=cell.packet_payload_bytes,
            with_end_to_end=cell.with_end_to_end,
            paths=paths,
            return_plan=True,
        )
    return record, recorder.events, plan


def _pool_cell_worker(
    cell: Cell,
) -> Tuple[DeploymentRecord, List[Event], dict]:
    """Top-level (picklable) entry point for pool workers."""
    return _execute_cell(cell)


def _pool_map_worker(payload: Tuple[Callable, Any]) -> Any:
    fn, item = payload
    return fn(item)


class ExperimentRunner:
    """Fans experiment cells out across a process pool, with a
    content-addressed result cache and a JSONL journal.

    Args:
        config: A :class:`RunnerConfig`; keyword arguments build one
            for you (``ExperimentRunner(workers=4, cache_dir=...)``).
    """

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        *,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        journal: Optional[str] = None,
    ) -> None:
        self.config = config or RunnerConfig(
            workers=workers, cache_dir=cache_dir, journal=journal
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )

    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell]) -> List[CellResult]:
        """Execute every cell; results are in submission order."""
        cells = list(cells)
        results: List[Optional[CellResult]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)

        # Cache probe (and intra-run dedup: identical cells later in
        # the list wait for the first occurrence instead of re-running).
        pending: List[int] = []
        first_with_key: Dict[str, int] = {}
        duplicates: Dict[int, int] = {}
        for i, cell in enumerate(cells):
            key = cell.key() if self.cache is not None else None
            keys[i] = key
            if key is not None:
                hit = self.cache.get_entry(key)
                if hit is not None:
                    hit_record, hit_plan = hit
                    results[i] = CellResult(
                        cell=cell,
                        record=hit_record,
                        events=[{"kind": "cache.hit", "key": key}],
                        cached=True,
                        plan=hit_plan,
                    )
                    continue
                if key in first_with_key:
                    duplicates[i] = first_with_key[key]
                    continue
                first_with_key[key] = i
            pending.append(i)

        if pending:
            try:
                if self.config.workers == 1:
                    self._run_serial(cells, pending, results)
                else:
                    self._run_pool(cells, pending, results)
            except (KeyboardInterrupt, CancelledError) as exc:
                raise self._interrupted(
                    cells, pending, results, keys
                ) from exc

        for i, source in duplicates.items():
            origin = results[source]
            assert origin is not None
            results[i] = CellResult(
                cell=cells[i],
                record=origin.record,
                events=[{"kind": "cache.hit", "key": keys[i]}],
                cached=True,
                plan=origin.plan,
            )

        if self.cache is not None:
            for i in pending:
                res = results[i]
                if res is not None and keys[i] is not None:
                    self.cache.put(keys[i], res.record, plan=res.plan)

        final = [res for res in results if res is not None]
        assert len(final) == len(cells)
        self._journal_results(final, keys)
        return final

    def _run_serial(
        self,
        cells: Sequence[Cell],
        pending: Sequence[int],
        results: List[Optional[CellResult]],
    ) -> None:
        # Share one PathEnumerator per network instance, exactly like
        # the historical serial harness loop.
        enumerators: Dict[int, PathEnumerator] = {}
        for i in pending:
            cell = cells[i]
            paths = enumerators.setdefault(
                id(cell.network), PathEnumerator(cell.network)
            )
            record, events, plan = _execute_cell(cell, paths)
            results[i] = CellResult(
                cell=cell, record=record, events=events, plan=plan
            )

    def _run_pool(
        self,
        cells: Sequence[Cell],
        pending: Sequence[int],
        results: List[Optional[CellResult]],
    ) -> None:
        workers = min(self.config.workers, len(pending))
        pool = self._executor_factory(max_workers=workers)
        futures: Dict[int, Any] = {}
        try:
            for i in pending:
                futures[i] = pool.submit(_pool_cell_worker, cells[i])
            for i in pending:
                record, events, plan = futures[i].result()
                results[i] = CellResult(
                    cell=cells[i], record=record, events=events, plan=plan
                )
        except (KeyboardInterrupt, CancelledError):
            # Interrupted mid-pool: harvest every cell that did finish
            # (the in-order result() loop may not have consumed them
            # yet), cancel the rest, and shut the pool down without
            # waiting so no worker is left running — then let
            # run_cells surface the partial results.
            for i, fut in futures.items():
                if results[i] is not None or not fut.done():
                    continue
                try:
                    record, events, plan = fut.result(timeout=0)
                except BaseException:
                    continue
                results[i] = CellResult(
                    cell=cells[i], record=record, events=events, plan=plan
                )
            for fut in futures.values():
                fut.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    #: Pool class used by :meth:`_run_pool`; a hook so tests can run
    #: the interrupt path deterministically on a thread pool.
    _executor_factory = staticmethod(ProcessPoolExecutor)

    def _interrupted(
        self,
        cells: Sequence[Cell],
        pending: Sequence[int],
        results: List[Optional[CellResult]],
        keys: Sequence[Optional[str]],
    ) -> RunnerInterrupted:
        """Persist, journal and package what completed before an
        interrupt; the returned exception carries the partial results."""
        if self.cache is not None:
            for i in pending:
                res = results[i]
                if res is not None and keys[i] is not None:
                    self.cache.put(keys[i], res.record, plan=res.plan)
        done = [
            (res, keys[i])
            for i, res in enumerate(results)
            if res is not None
        ]
        partial = [res for res, _ in done]
        self._journal_results(partial, [key for _, key in done])
        if self.config.journal:
            with JournalWriter(self.config.journal) as journal:
                journal.write(
                    {
                        "kind": "runner.interrupted",
                        "completed": len(partial),
                        "total": len(cells),
                    }
                )
        return RunnerInterrupted(partial, total=len(cells))

    def _journal_results(
        self,
        results: Sequence[CellResult],
        keys: Sequence[Optional[str]],
    ) -> None:
        if not self.config.journal:
            return
        with JournalWriter(self.config.journal) as journal:
            for i, res in enumerate(results):
                journal.write(
                    {
                        "kind": "cell.start",
                        "cell": i,
                        "framework": res.cell.framework.name,
                        "tag": res.cell.tag,
                        "key": keys[i],
                        "cached": res.cached,
                    }
                )
                for event in res.events:
                    line = dict(event)
                    line["cell"] = i
                    journal.write(line)
                journal.write(
                    {
                        "kind": "cell.done",
                        "cell": i,
                        "record": dataclasses.asdict(res.record),
                    }
                )

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Sequence[Any]) -> List[Any]:
        """Order-preserving parallel map for non-cell sweep loops.

        ``fn`` must be a module-level callable and ``items`` picklable
        when ``workers > 1``; with one worker this is a plain list
        comprehension (no pool, no pickling).  Map sweeps journal one
        ``map.item`` line per item (they produce no DeploymentRecords,
        so there are no ``cell.*`` events to record).
        """
        items = list(items)
        if self.config.workers == 1 or len(items) <= 1:
            outputs = [fn(item) for item in items]
        else:
            workers = min(self.config.workers, len(items))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outputs = list(
                    pool.map(
                        _pool_map_worker,
                        [(fn, item) for item in items],
                        chunksize=1,
                    )
                )
        if self.config.journal:
            name = getattr(fn, "__name__", repr(fn))
            with JournalWriter(self.config.journal) as journal:
                for i in range(len(items)):
                    journal.write({"kind": "map.item", "index": i, "fn": name})
        return outputs


def execute_cells(
    cells: Sequence[Cell],
    runner: Optional[ExperimentRunner] = None,
) -> List[CellResult]:
    """Run cells through ``runner``, or serially when ``runner`` is
    None — the shared entry point of the experiment sweep loops."""
    return (runner or ExperimentRunner()).run_cells(cells)
