"""Differential oracle suite: fast == classic == brute force.

The ``fast`` solver profile (presolve + pseudo-cost branching + primal
heuristics) exists to shrink the search, never to change an answer.
This suite pins that contract three ways:

* On hand-picked golden instances and a seeded stream of random
  pure-integer models, both profiles return the exact optimal
  objective of :func:`milp_testkit.enumerate_oracle` — a brute-force
  enumerator that shares no code with the solver.
* Infeasible instances are reported INFEASIBLE by both profiles.
* Presolve's ``lift_values`` round-trips fixed variables verbatim and
  lifted assignments are feasible in the *original* model.

The default run covers a fast-lane slice of the seed stream; the full
200-seed sweep (the acceptance bar) is marked ``slow`` and runs in the
weekly CI cron.
"""

import pytest

from milp_testkit import enumerate_oracle, random_milp
from repro.milp.branch_bound import SOLVER_PROFILES, solve
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.presolve import PresolveStatus, presolve
from repro.milp.solution import SolveStatus

FAST_LANE_SEEDS = range(48)
FULL_SWEEP_SEEDS = range(200)


def knapsack(n=8, seed=3):
    import random

    rng = random.Random(seed)
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    weights = [rng.randint(2, 9) for _ in range(n)]
    values = [rng.randint(5, 20) for _ in range(n)]
    m.add_constr(
        LinExpr.total(w * x for w, x in zip(weights, xs))
        <= sum(weights) // 2
    )
    m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
    return m


def covering(n=6):
    m = Model()
    xs = [m.add_integer(f"y{i}", 0, 5) for i in range(n)]
    for i in range(n - 1):
        m.add_constr(2 * xs[i] + 3 * xs[i + 1] >= 7)
    m.minimize(LinExpr.total(xs))
    return m


def mixed_signs():
    """Negative bounds, negative objective coefficients, an == row."""
    m = Model()
    a = m.add_integer("a", -3, 3)
    b = m.add_integer("b", -2, 4)
    c = m.add_binary("c")
    m.add_constr(a + b + 2 * c == 1)
    m.add_constr(2 * a - b <= 3)
    m.minimize(3 * a - 2 * b + 5 * c)
    return m


def infeasible():
    m = Model()
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constr(x + y >= 3)
    m.minimize(x + y)
    return m


GOLDEN = [
    ("knapsack8", knapsack),
    ("knapsack5", lambda: knapsack(n=5, seed=9)),
    ("covering", covering),
    ("mixed_signs", mixed_signs),
    ("infeasible", infeasible),
]


def assert_matches_oracle(model, profile):
    """One differential check: solver vs enumeration, plus feasibility
    of the returned assignment in the original (un-presolved) model."""
    oracle = enumerate_oracle(model)
    solution = solve(model, profile=profile)
    if oracle is None:
        assert solution.status is SolveStatus.INFEASIBLE
        assert solution.objective is None
        return
    assert solution.status is SolveStatus.OPTIMAL
    assert solution.objective == pytest.approx(oracle, abs=1e-6)
    assert model.is_feasible(solution.values)
    # The reported objective must be the objective *of the reported
    # assignment* — lifting through presolve must not desynchronize
    # them.  (The model's own objective includes its constant term,
    # which the solver convention excludes.)
    recomputed = (
        model.objective_value(solution.values) - model.objective.constant
    )
    assert recomputed == pytest.approx(solution.objective, abs=1e-6)


class TestGoldenInstances:
    @pytest.mark.parametrize("profile", SOLVER_PROFILES)
    @pytest.mark.parametrize(
        "build", [g[1] for g in GOLDEN], ids=[g[0] for g in GOLDEN]
    )
    def test_profile_matches_oracle(self, build, profile):
        assert_matches_oracle(build(), profile)

    @pytest.mark.parametrize(
        "build", [g[1] for g in GOLDEN], ids=[g[0] for g in GOLDEN]
    )
    def test_profiles_agree_exactly(self, build):
        fast = solve(build(), profile="fast")
        classic = solve(build(), profile="classic")
        assert fast.status is classic.status
        if fast.objective is None:
            assert classic.objective is None
        else:
            assert fast.objective == pytest.approx(
                classic.objective, abs=1e-9
            )


class TestRandomInstances:
    @pytest.mark.parametrize("profile", SOLVER_PROFILES)
    @pytest.mark.parametrize("seed", FAST_LANE_SEEDS)
    def test_fast_lane_sweep(self, seed, profile):
        assert_matches_oracle(random_milp(seed), profile)

    @pytest.mark.slow
    @pytest.mark.parametrize("profile", SOLVER_PROFILES)
    @pytest.mark.parametrize("seed", FULL_SWEEP_SEEDS)
    def test_full_sweep(self, seed, profile):
        assert_matches_oracle(random_milp(seed), profile)

    def test_seed_stream_mixes_feasible_and_infeasible(self):
        # The sweep only means something if the generator actually
        # exercises both terminal statuses.
        oracles = [
            enumerate_oracle(random_milp(seed)) for seed in FAST_LANE_SEEDS
        ]
        assert sum(o is not None for o in oracles) >= 10
        assert sum(o is None for o in oracles) >= 5


class TestPresolveRoundTrip:
    @pytest.mark.parametrize("seed", FAST_LANE_SEEDS)
    def test_lift_restores_fixed_vars_verbatim(self, seed):
        model = random_milp(seed)
        pres = presolve(model)
        if pres.status != PresolveStatus.REDUCED:
            return
        reduced_solution = solve(pres.model, profile="classic")
        if not reduced_solution.status.has_solution:
            return
        lifted = pres.lift_values(reduced_solution.values)
        assert set(lifted) == set(model.variables)
        for var, value in pres.fixed.items():
            # Exact round-trip, not approximate: fixed values must pass
            # through lift_values untouched.
            assert lifted[var] == value
        assert model.is_feasible(lifted)

    def test_fully_solved_model_lifts_exactly(self):
        m = Model()
        x = m.add_integer("x", 2, 2)
        y = m.add_integer("y", 0, 10)
        m.add_constr(y == 2 * x)
        m.minimize(x + y)
        pres = presolve(m)
        assert pres.status == PresolveStatus.SOLVED
        lifted = pres.lift_values({})
        assert lifted == {x: 2.0, y: 4.0}
        assert pres.objective_offset == pytest.approx(6.0)

    @pytest.mark.parametrize("seed", FAST_LANE_SEEDS)
    def test_reduction_preserves_optimum(self, seed):
        """Solving the reduction and adding the offset equals solving
        the original — the invariant behind the whole fast profile."""
        model = random_milp(seed)
        pres = presolve(model)
        oracle = enumerate_oracle(model)
        if pres.status == PresolveStatus.INFEASIBLE:
            assert oracle is None
            return
        if pres.status == PresolveStatus.SOLVED:
            assert oracle is not None
            assert pres.objective_offset == pytest.approx(oracle, abs=1e-6)
            return
        inner = solve(pres.model, profile="classic")
        if oracle is None:
            assert inner.status is SolveStatus.INFEASIBLE
        else:
            assert inner.status is SolveStatus.OPTIMAL
            assert inner.objective + pres.objective_offset == pytest.approx(
                oracle, abs=1e-6
            )

    def test_oracle_rejects_unbounded_domains(self):
        m = Model()
        m.add_integer("x")  # default ub = inf
        m.minimize(LinExpr() + 0.0)
        with pytest.raises(ValueError):
            enumerate_oracle(m)

    def test_oracle_rejects_continuous_vars(self):
        m = Model()
        m.add_var("x", 0.0, 1.0)
        m.minimize(LinExpr() + 0.0)
        with pytest.raises(ValueError):
            enumerate_oracle(m)
