"""Command-line interface.

Run any paper experiment or an ad-hoc deployment without writing code:

    python -m repro fig2
    python -m repro exp1
    python -m repro exp2 --topologies 1 5 10 --programs 20
    python -m repro exp2 --workers 4 --cache-dir .repro-cache \
        --journal exp2.jsonl
    python -m repro exp5 --programs 10 30 50
    python -m repro exp6
    python -m repro exp7 --seeds 0 1 2 --events 8
    python -m repro deploy --workload real:10 --topology zoo:3 \
        --mode heuristic --verify
    python -m repro churn run --workload real:10 --topology wan:16:24 \
        --seed 3 --events 8 --scenario-out churn.json
    python -m repro churn replay churn.json
    python -m repro simulate --workload real:10 --topology zoo:3 \
        --flows 100000 --engine batch
    python -m repro simulate --overhead 48 --engine exact
    python -m repro simulate --overhead 48 --flows 5000 \
        --engine contention --load 0.9
    python -m repro serve --socket /tmp/repro.sock --workers 4
    python -m repro deploy --workload real:10 --topology wan:16:24 \
        --connect /tmp/repro.sock
    python -m repro suite list
    python -m repro suite run exp2 --workers 4 --out exp2-report.json
    python -m repro suite run my-sweep.yaml --connect /tmp/repro.sock

Workload specs: ``real:N`` (switch.p4 slices), ``sketches:N``,
``synthetic:N[:seed]`` or combinations joined with ``+``.  Topology
specs: ``zoo:ID`` (Table III), ``linear:N``, ``fattree:K``,
``wan:NODES:EDGES[:seed]``.

Every experiment command takes ``--workers N`` (process-pool fan-out
of the framework x problem cells; results identical to serial),
``--cache-dir PATH`` (content-addressed result cache: repeated sweep
points and re-runs skip solving) and ``--journal PATH`` (JSONL
telemetry of runner, deploy and branch & bound solver events).

``repro serve`` keeps the control plane resident; ``--connect ADDR``
on ``deploy``, ``simulate``, ``churn run|replay`` and ``plan diff``
routes the op through the daemon instead of solving in-process.
Repeat deploys on one connection take the warm incremental path, and
every result is byte-identical to the local run (see
:mod:`repro.server.ops`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from repro.dataplane.program import Program
from repro.network.topology import Network


def parse_workload(spec: str, seed: int = None) -> List[Program]:
    """Parse a ``+``-joined workload spec into programs.

    ``seed`` (the CLI ``--seed`` flag) overrides the default synthetic
    generator seed; a seed written *inside* the spec
    (``synthetic:N:SEED``) still wins over it.
    """
    from repro.workloads import (
        real_programs,
        sketch_programs,
        synthetic_programs,
    )

    programs: List[Program] = []
    for part in spec.split("+"):
        fields = part.strip().split(":")
        kind = fields[0]
        if kind == "real":
            programs += real_programs(int(fields[1]))
        elif kind == "sketches":
            programs += sketch_programs(int(fields[1]))
        elif kind == "synthetic":
            count = int(fields[1])
            if len(fields) > 2:
                part_seed = int(fields[2])
            elif seed is not None:
                part_seed = seed
            else:
                part_seed = 7
            programs += synthetic_programs(count, seed=part_seed)
        else:
            raise ValueError(f"unknown workload kind {kind!r} in {spec!r}")
    return programs


def parse_topology(spec: str, seed: int = None) -> Network:
    """Parse a topology spec into a network.

    Accepts the generator grammar (``zoo:ID``, ``linear:N``,
    ``fattree:K``, ``wan:NODES:EDGES[:SEED]``) and every named preset
    of :mod:`repro.network.catalog` (``testbed``, ``topozoo-3``, ...).
    ``seed`` (the CLI ``--seed`` flag) seeds the random WAN generator
    unless the spec pins its own (``wan:NODES:EDGES:SEED``).
    """
    from repro.network.catalog import resolve

    return resolve(spec, seed=seed)


def _run_op(args: argparse.Namespace, op: str, params: dict, on_event=None):
    """Run one control-plane op locally or via ``--connect``.

    This is the CLI half of the server/CLI differential: the local
    path calls exactly the op function a server session dispatches, so
    the deterministic view of the document is byte-identical either
    way.  With ``on_event`` set in connect mode, the client subscribes
    first and streams the server's telemetry through the callback.
    """
    connect = getattr(args, "connect", None)
    if connect:
        from repro.server.client import ReproClient

        with ReproClient.connect(connect) as client:
            if on_event is not None:
                client.subscribe()
            return client.request(op, params, on_event=on_event)
    from repro.server.ops import OP_FUNCTIONS

    return OP_FUNCTIONS[op](params)


def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.server.client import ServerError
    from repro.server.ops import OpError

    params = {
        "workload": args.workload,
        "topology": args.topology,
        "seed": args.seed,
        "mode": args.mode,
        "epsilon2": args.epsilon2,
        "time_limit_s": args.time_limit,
        "solver_profile": args.solver_profile,
        "replicate": args.replicate,
        "verify": args.verify,
        "configs": args.configs,
    }
    try:
        doc = _run_op(args, "deploy", params)
    except (OpError, ServerError, ConnectionError) as exc:
        print(f"error: {exc}")
        return 1
    summary = doc["summary"]
    print(
        f"deployed {summary['num_mats']} MATs from "
        f"{summary['num_programs']} programs on "
        f"{summary['occupied_switches']} switches ({summary['network']})"
    )
    print(
        f"per-packet byte overhead (A_max): {summary['a_max_bytes']} B"
    )
    print(f"placement time: {doc['timing']['solve_time_s'] * 1000:.1f} ms")
    for channel in summary["channels"]:
        print(
            f"  channel {channel['src']} -> {channel['dst']}: "
            f"{channel['bytes']} B"
        )
    if args.explain or args.diagram or args.out:
        from repro.plan import plan_from_dict

        plan = plan_from_dict(doc["plan"])
    if args.explain:
        from repro.core.explain import explain_overhead

        print()
        print(explain_overhead(plan).render())
    if args.diagram:
        from repro.experiments.visualize import render_plan

        print()
        print(render_plan(plan))
    if args.verify:
        verification = doc["verification"]
        print(
            f"dataflow verified: {verification['reads_checked']} reads, "
            f"{verification['rounds']} traversal round(s)"
        )
    if args.configs:
        import json

        print(json.dumps(doc["configs"], indent=2))
    if args.out:
        from repro.plan import write_plan

        write_plan(plan, args.out)
        print(
            f"wrote plan to {args.out} "
            f"(fingerprint {doc['fingerprint'][:12]})"
        )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    """The ``plan export|validate|diff`` artifact subcommands."""
    from repro.plan import (
        DeploymentError,
        PlanSchemaError,
        read_plan,
        write_plan,
    )

    if args.plan_command == "export":
        from repro.core import Hermes

        programs = parse_workload(args.workload)
        network = parse_topology(args.topology)
        hermes = Hermes(mode=args.mode, time_limit_s=args.time_limit)
        plan = hermes.deploy(programs, network).plan
        write_plan(plan, args.out)
        print(
            f"wrote plan ({len(plan.placements)} MATs, "
            f"A_max={plan.max_metadata_bytes()} B) to {args.out} "
            f"(fingerprint {plan.fingerprint()[:12]})"
        )
        return 0

    if args.plan_command == "validate":
        try:
            plan = read_plan(args.plan)
        except (PlanSchemaError, OSError) as exc:
            print(f"cannot load plan: {exc}")
            return 1
        try:
            plan.validate()
        except DeploymentError as exc:
            print(f"INVALID: {exc}")
            return 1
        print(
            f"valid: {len(plan.placements)} MATs on "
            f"{plan.num_occupied_switches()} switches, "
            f"A_max={plan.max_metadata_bytes()} B, "
            f"t_e2e={plan.end_to_end_latency_us():.1f} us"
        )
        return 0

    if args.plan_command == "diff":
        import json

        from repro.server.client import ServerError
        from repro.server.ops import OpError

        try:
            old = read_plan(args.old)
            new = read_plan(args.new)
        except (PlanSchemaError, OSError) as exc:
            print(f"cannot load plan: {exc}")
            return 2
        try:
            doc = _run_op(
                args,
                "plan_diff",
                {"old": old.to_dict(), "new": new.to_dict()},
            )
        except (OpError, ServerError, ConnectionError) as exc:
            print(f"error: {exc}")
            return 2
        print(doc["summary"])
        if args.json_output:
            print(json.dumps(doc["diff"], indent=2, sort_keys=True))
        if args.exit_code:
            return 0 if doc["is_empty"] else 1
        return 0

    raise AssertionError(args.plan_command)  # pragma: no cover


def _cmd_simulate(args: argparse.Namespace) -> int:
    """The ``simulate`` subcommand: spec + engine, end to end.

    Without ``--overhead`` a deployment is computed first (Hermes, like
    ``deploy``) and the spec is derived from the resulting plan's real
    routed pairs; with ``--overhead N`` the classic scalar uniform-path
    model is used directly.  ``--flows N`` swaps the single-message
    model for a seeded heavy-tailed trace of N flows.
    """
    import json

    from repro.experiments.reporting import Table
    from repro.server.client import ServerError
    from repro.server.ops import OpError
    from repro.telemetry import Recorder, attached

    params = {
        "workload": args.workload,
        "topology": args.topology,
        "seed": args.seed,
        "mode": args.mode,
        "time_limit_s": args.time_limit,
        "solver_profile": args.solver_profile,
        "engine": args.engine,
        "load": args.load,
        "overhead": args.overhead,
        "flows": args.flows,
        "trace_seed": args.trace_seed,
        "payload": args.payload,
        "message_bytes": args.message_bytes,
    }
    events = []
    try:
        if getattr(args, "connect", None):
            doc = _run_op(
                args,
                "simulate",
                params,
                on_event=(
                    (lambda frame: events.append(frame["data"]))
                    if args.journal
                    else None
                ),
            )
        else:
            recorder = Recorder()
            with attached(recorder):
                doc = _run_op(args, "simulate", params)
            events = recorder.events
    except (OpError, ServerError, ConnectionError) as exc:
        print(exc)
        return 1
    if "deploy" in doc:
        deployed = doc["deploy"]
        print(
            f"deployed {deployed['num_mats']} MATs on "
            f"{deployed['occupied_switches']} switches "
            f"(A_max {deployed['a_max_bytes']} B)"
        )
    if args.journal:
        from repro.experiments.runner.telemetry import JournalWriter

        with JournalWriter(args.journal) as journal:
            for event in events:
                journal.write(event)

    summary = dict(doc["summary"])
    summary["wall_ms"] = doc["timing"]["wall_ms"]
    table = Table(
        title=(
            f"simulate: {summary['source']} via "
            f"{summary['engine']} engine"
        ),
        headers=["metric", "value"],
    )
    table.add_row(["flows", summary["flows"]])
    table.add_row(["paths", summary["paths"]])
    table.add_row(["mean FCT (us)", f"{summary['mean_fct_us']:.1f}"])
    table.add_row(["p99 FCT (us)", f"{summary['p99_fct_us']:.1f}"])
    table.add_row(["mean slowdown", f"{summary['mean_slowdown']:.4f}"])
    table.add_row(
        ["worst FCT ratio", f"{summary['worst_fct_ratio']:.4f}"]
    )
    table.add_row(
        ["worst goodput ratio", f"{summary['worst_goodput_ratio']:.4f}"]
    )
    table.add_row(
        ["wire bytes (MB)", f"{summary['total_wire_mb']:.2f}"]
    )
    if "mean_wait_us" in summary:
        table.add_row(["offered load", f"{summary['load']:.2f}"])
        table.add_row(
            ["mean wait (us)", f"{summary['mean_wait_us']:.2f}"]
        )
        table.add_row(
            ["max wait (us)", f"{summary['max_wait_us']:.2f}"]
        )
        table.add_row(
            ["contended flows", f"{summary['contended_fraction']:.0%}"]
        )
    table.add_row(["wall (ms)", f"{summary['wall_ms']:.1f}"])
    print(table.render())
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote summary to {args.json}")
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    """The ``churn run|replay|report`` lifecycle subcommands."""
    import json

    from repro.runtime import (
        DisruptionReport,
        ScenarioError,
        read_scenario,
        write_scenario,
    )

    if args.churn_command == "report":
        try:
            with open(args.report) as fh:
                report = DisruptionReport.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load report: {exc}")
            return 1
        # Attach (or recompute, when --engine/--load is explicit) the
        # FCT inflation columns over the saved A_max trajectory.
        if args.engine or args.load is not None or not report.has_traffic:
            report.attach_traffic(
                engine=args.engine or "analytic", load=args.load
            )
        print(report.render())
        return 0

    from repro.server.client import ServerError
    from repro.server.ops import OpError

    params = {
        "seed": args.seed,
        "replan_budget_s": args.replan_budget,
        "max_retries": args.max_retries,
        "debounce_s": args.debounce,
        "incremental": args.incremental,
        "max_blast_fraction": args.max_blast_fraction,
        "engine": args.engine,
        "load": args.load,
    }
    if args.churn_command == "run":
        params.update(
            workload=args.workload,
            topology=args.topology,
            events=args.events,
        )
    else:  # replay: the scenario file is self-contained
        try:
            params["scenario"] = read_scenario(args.scenario).to_dict()
        except (ScenarioError, OSError) as exc:
            print(f"cannot load scenario: {exc}")
            return 1

    connected = bool(getattr(args, "connect", None))
    if connected and args.plans_dir:
        print("--plans-dir needs the local plan store; drop --connect")
        return 2
    result = None
    try:
        if connected:
            doc = _run_op(args, "churn_run", params)
        else:
            from repro.server.ops import churn_doc, run_churn

            scenario, result, live_report = run_churn(params)
            doc = churn_doc(scenario, result, live_report)
    except (OpError, ServerError, ConnectionError) as exc:
        print(f"error: {exc}")
        return 1

    if args.churn_command == "run" and args.scenario_out:
        from repro.runtime import Scenario

        write_scenario(
            Scenario.from_dict(doc["scenario"]), args.scenario_out
        )
        print(f"wrote scenario to {args.scenario_out}")
    report = DisruptionReport.from_dict(doc["report"])
    print(report.render())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(doc["report"], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.report_out}")
    if args.plans_dir and result is not None:
        paths = result.store.write_dir(args.plans_dir)
        print(
            f"wrote {len(paths) - 1} plan versions + history.json "
            f"to {args.plans_dir}"
        )
    return 1 if args.strict and not doc["converged"] else 0


def _suite_footer(report) -> str:
    """The one-line summary printed after a suite's tables."""
    return (
        f"suite {report.name} ({report.kind}): "
        f"{report.num_cells} cells, {report.cached_cells} cached"
    )


def _cmd_suite(args: argparse.Namespace) -> int:
    """The ``suite run|list|validate|report`` subcommands.

    ``run`` prints the aggregated tables exactly as the legacy
    experiment commands did (the summary footer comes after a blank
    line, so the tables region stays byte-identical); ``--connect``
    routes the compile through a running daemon and streams per-cell
    telemetry to stderr.
    """
    from repro.suite import SuiteSpecError, cell_plan, load_spec

    if args.suite_command == "list":
        from repro.experiments.reporting import Table
        from repro.suite import shipped_specs

        table = Table(
            "shipped suite specs (repro suite run NAME)",
            ["name", "kind", "cells", "title"],
        )
        for name, spec in shipped_specs().items():
            table.add_row(
                [name, spec.kind, len(cell_plan(spec)), spec.title or name]
            )
        print(table.render())
        return 0

    if args.suite_command == "report":
        from repro.suite import SuiteReport

        try:
            report = SuiteReport.load(args.report)
        except (OSError, ValueError) as exc:
            print(f"cannot load report: {exc}")
            return 1
        print(report.render())
        print()
        print(_suite_footer(report))
        return 0

    try:
        spec = load_spec(args.spec)
    except (SuiteSpecError, ValueError, OSError) as exc:
        print(f"error: {exc}")
        return 1

    if args.suite_command == "validate":
        coords = cell_plan(spec)
        print(
            f"valid: {spec.name} ({spec.kind}), {len(coords)} cells"
        )
        for coord in coords:
            print(
                "  " + " ".join(f"{k}={v}" for k, v in coord.items())
            )
        return 0

    # run
    from repro.server.client import ServerError
    from repro.server.ops import OpError
    from repro.suite import SuiteReport, run_suite

    if getattr(args, "connect", None):

        def on_event(frame):
            data = frame.get("data", {})
            kind = data.get("kind", "")
            if not kind.startswith("suite."):
                return
            detail = " ".join(
                f"{k}={v}"
                for k, v in sorted(data.items())
                if k != "kind"
            )
            print(f"[{kind}] {detail}", file=sys.stderr)

        params = {"spec": spec.to_dict(), "workers": args.workers}
        try:
            doc = _run_op(args, "suite_run", params, on_event=on_event)
        except (OpError, ServerError, ConnectionError) as exc:
            print(f"error: {exc}")
            return 1
        report = SuiteReport.from_dict(doc["report"])
    else:
        report = run_suite(spec, runner=_make_runner(args))
    print(report.render())
    print()
    print(_suite_footer(report))
    if args.out:
        report.save(args.out)
        print(f"wrote report to {args.out}")
    return 0


def _pin_spec_seed(spec: str, seed: int, kind: str) -> str:
    """Append an explicit ``--seed`` to seedable spec parts.

    ``synthetic:N`` becomes ``synthetic:N:SEED`` and ``wan:N:E``
    becomes ``wan:N:E:SEED``; parts that already pin a seed (or take
    none) pass through unchanged.
    """
    if seed is None:
        return spec
    arity = {"synthetic": 2, "wan": 3}[kind]
    parts = []
    for part in spec.split("+"):
        fields = part.strip().split(":")
        if fields[0] == kind and len(fields) == arity:
            part = f"{part.strip()}:{seed}"
        parts.append(part)
    return "+".join(parts)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived control-plane daemon (``repro serve``)."""
    from repro.server.service import ReproServer, serve_until_complete

    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            socket_path=args.socket,
            workers=args.workers,
            cache_dir=args.cache_dir,
            state_dir=args.state_dir,
            journal=args.journal,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    serve_until_complete(server)
    return 0


def _make_runner(args: argparse.Namespace):
    """Build an ExperimentRunner from ``--workers/--cache-dir/--journal``.

    Returns None when every flag is at its default, keeping the plain
    in-process serial path for unadorned invocations.
    """
    workers = getattr(args, "workers", 1) or 1
    cache_dir = getattr(args, "cache_dir", None)
    journal = getattr(args, "journal", None)
    if workers == 1 and not cache_dir and not journal:
        return None
    from repro.experiments.runner import ExperimentRunner

    return ExperimentRunner(
        workers=workers, cache_dir=cache_dir, journal=journal
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.command
    runner = _make_runner(args)
    if name == "fig2":
        from repro.experiments import fig2_motivation

        fig2_motivation.main(runner=runner)
    elif name == "exp1":
        from repro.experiments import exp1_testbed

        exp1_testbed.main(exp1_testbed.run(runner=runner))
    elif name in ("exp2", "exp3", "exp4"):
        from repro.experiments import exp2_overhead, exp3_exectime, exp4_endtoend

        points = exp2_overhead.run(
            topology_ids=tuple(args.topologies),
            num_programs=args.programs,
            ilp_time_limit_s=args.time_limit,
            runner=runner,
            solver_profile=args.solver_profile,
        )
        {
            "exp2": exp2_overhead.main,
            "exp3": exp3_exectime.main,
            "exp4": exp4_endtoend.main,
        }[name](points)
        _maybe_export(
            args,
            [
                {"topology": p.topology_id, **_record_dict(p.record)}
                for p in points
            ],
        )
    elif name == "exp5":
        from repro.experiments import exp5_scalability

        points = exp5_scalability.run(
            program_counts=tuple(args.programs_sweep),
            ilp_time_limit_s=args.time_limit,
            runner=runner,
            solver_profile=args.solver_profile,
        )
        exp5_scalability.main(points)
        _maybe_export(
            args,
            [
                {"num_programs": p.num_programs, **_record_dict(p.record)}
                for p in points
            ],
        )
    elif name == "exp6":
        from repro.experiments import exp6_resources

        exp6_resources.main(runner=runner)
    elif name == "exp7":
        from repro.experiments import exp7_churn

        points = exp7_churn.run(
            seeds=tuple(args.seeds),
            num_events=args.events,
            workload_spec=args.workload,
            runner=runner,
        )
        exp7_churn.main(points)
        _maybe_export(
            args,
            [
                {
                    "seed": p.seed,
                    "topology": p.topology_spec,
                    **p.report.to_dict(),
                }
                for p in points
            ],
        )
    elif name == "report":
        _quick_report()
    else:  # pragma: no cover - argparse prevents this
        raise AssertionError(name)
    return 0


def _quick_report() -> None:
    """A five-minute, laptop-scale tour of the reproduction."""
    from repro.baselines import Ffl, Ffls, HermesHeuristic, MinStage
    from repro.experiments import exp2_overhead, exp6_resources, fig2_motivation

    print("#" * 62)
    print("# Hermes reproduction: quick report (reduced scales)")
    print("#" * 62)
    print()
    fig2_motivation.main()
    print()
    points = exp2_overhead.run(
        topology_ids=(1, 5, 10),
        num_programs=20,
        frameworks=[
            MinStage(time_limit_s=0.3),
            Ffl(),
            Ffls(),
            HermesHeuristic(),
        ],
    )
    exp2_overhead.main(points)
    print()
    exp6_resources.main()
    print()
    hermes = [p.record for p in points if p.record.framework == "Hermes"]
    worst = [
        max(
            p.record.overhead_bytes
            for p in points
            if p.topology_id == h_point
        )
        for h_point in sorted({p.topology_id for p in points})
    ]
    print(
        "headline: Hermes per-packet overhead "
        f"{[r.overhead_bytes for r in hermes]} B vs worst baseline "
        f"{worst} B across the three topologies."
    )


def _record_dict(record) -> dict:
    from dataclasses import asdict

    return asdict(record)


def _maybe_export(args: argparse.Namespace, rows: list) -> None:
    """Write structured rows to ``--json PATH`` if requested."""
    path = getattr(args, "json", None)
    if not path:
        return
    import json

    with open(path, "w") as fh:
        json.dump(rows, fh, indent=1)
    print(f"wrote {len(rows)} rows to {path}")


def _add_solver_profile_flag(p: argparse.ArgumentParser) -> None:
    from repro.milp.branch_bound import DEFAULT_PROFILE, SOLVER_PROFILES

    p.add_argument(
        "--solver-profile",
        choices=tuple(SOLVER_PROFILES),
        default=DEFAULT_PROFILE,
        help=(
            "branch & bound search profile: 'fast' adds presolve, "
            "pseudo-cost branching and primal heuristics; 'classic' is "
            "the plain most-fractional search (both are exact)"
        ),
    )


def _add_engine_flag(p: argparse.ArgumentParser, default) -> None:
    """The ``--engine``/``--load`` knobs shared by simulate and churn."""
    p.add_argument(
        "--engine",
        choices=("exact", "analytic", "batch", "contention"),
        default=default,
        help=(
            "traffic evaluation engine: 'exact' per-packet DES, "
            "'analytic' closed form (default semantics), 'batch' "
            "NumPy-vectorized closed form for large traces, "
            "'contention' shared output-queue model with queueing "
            "(the only engine where flows interact; see --load)"
        ),
    )
    p.add_argument(
        "--load",
        type=float,
        default=None,
        help=(
            "offered bottleneck utilization for the contention engine "
            "(implies --engine contention when set; >1 models "
            "overload; loads <= 0.1 are provably contention-free and "
            "match the exact DES)"
        ),
    )


def _add_runner_flags(p: argparse.ArgumentParser) -> None:
    """The parallel-runner flag set shared by every experiment command."""
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for the experiment cells (1 = serial)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (reruns skip solving)",
    )
    p.add_argument(
        "--journal",
        default=None,
        help="append JSONL runner/deploy/solver telemetry to this file",
    )


def _add_connect_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--connect",
        default=None,
        metavar="ADDR",
        help=(
            "run this op on a running 'repro serve' daemon instead of "
            "in-process: HOST:PORT or a Unix socket path (results are "
            "byte-identical either way)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hermes reproduction: experiments and deployments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("fig2", "exp1", "exp6", "report"):
        p = sub.add_parser(name, help=f"run {name}")
        if name != "report":
            _add_runner_flags(p)

    for name in ("exp2", "exp3", "exp4"):
        p = sub.add_parser(name, help=f"run {name} (shares exp2 runs)")
        p.add_argument(
            "--topologies", type=int, nargs="+", default=list(range(1, 11))
        )
        p.add_argument("--programs", type=int, default=50)
        p.add_argument("--time-limit", type=float, default=10.0)
        p.add_argument("--json", default=None, help="export rows to a JSON file")
        _add_solver_profile_flag(p)
        _add_runner_flags(p)

    p5 = sub.add_parser("exp5", help="run exp5 scalability")
    p5.add_argument(
        "--programs-sweep",
        type=int,
        nargs="+",
        default=[10, 20, 30, 40, 50],
    )
    p5.add_argument("--time-limit", type=float, default=10.0)
    p5.add_argument("--json", default=None, help="export rows to a JSON file")
    _add_solver_profile_flag(p5)
    _add_runner_flags(p5)

    p7 = sub.add_parser("exp7", help="run exp7 disruption under churn")
    p7.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2, 3, 4]
    )
    p7.add_argument("--events", type=int, default=8)
    p7.add_argument("--workload", default="real:10")
    p7.add_argument("--json", default=None, help="export rows to a JSON file")
    _add_runner_flags(p7)

    d = sub.add_parser("deploy", help="deploy a workload with Hermes")
    d.add_argument("--workload", default="real:10")
    d.add_argument("--topology", default="linear:3")
    d.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "seed for synthetic workloads and random WAN topologies "
            "(specs with an explicit seed still win)"
        ),
    )
    d.add_argument(
        "--mode", choices=("heuristic", "optimal"), default="heuristic"
    )
    d.add_argument("--epsilon2", type=int, default=None)
    d.add_argument("--time-limit", type=float, default=30.0)
    _add_solver_profile_flag(d)
    d.add_argument("--replicate", action="store_true")
    d.add_argument("--diagram", action="store_true")
    d.add_argument("--explain", action="store_true")
    d.add_argument("--verify", action="store_true")
    d.add_argument("--configs", action="store_true")
    d.add_argument(
        "--out",
        default=None,
        help="write the canonical plan JSON document to this path",
    )
    _add_connect_flag(d)

    sv = sub.add_parser(
        "serve",
        help="run the long-lived control-plane daemon (JSON-lines RPC)",
    )
    sv.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    sv.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (0 or omitted picks a free one)",
    )
    sv.add_argument(
        "--socket",
        default=None,
        help="listen on this Unix socket path instead of TCP",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool width for micro-batched cold solves "
            "(concurrent sessions' first deploys fan out together)"
        ),
    )
    sv.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed cold-solve cache directory",
    )
    sv.add_argument(
        "--state-dir",
        default=None,
        help=(
            "persist each session's plan history here; a session "
            "whose directory already exists resumes it"
        ),
    )
    sv.add_argument(
        "--journal",
        default=None,
        help="append every session telemetry event to this JSONL file",
    )

    pl = sub.add_parser(
        "plan", help="export, validate or diff plan artifacts"
    )
    plan_sub = pl.add_subparsers(dest="plan_command", required=True)

    pe = plan_sub.add_parser(
        "export", help="deploy a workload and write the plan document"
    )
    pe.add_argument("--workload", default="real:10")
    pe.add_argument("--topology", default="linear:3")
    pe.add_argument(
        "--mode", choices=("heuristic", "optimal"), default="heuristic"
    )
    pe.add_argument("--time-limit", type=float, default=30.0)
    pe.add_argument("--out", required=True, help="output plan JSON path")

    pv = plan_sub.add_parser(
        "validate",
        help="check a plan document against every paper constraint",
    )
    pv.add_argument("plan", help="plan JSON path")

    pd = plan_sub.add_parser(
        "diff", help="structural comparison of two plan documents"
    )
    pd.add_argument("old", help="old plan JSON path")
    pd.add_argument("new", help="new plan JSON path")
    pd.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print the full diff document as JSON",
    )
    pd.add_argument(
        "--exit-code",
        action="store_true",
        help="exit 1 when the plans differ (0 when identical)",
    )
    _add_connect_flag(pd)

    ch = sub.add_parser(
        "churn", help="replay churn scenarios against a live deployment"
    )
    churn_sub = ch.add_subparsers(dest="churn_command", required=True)

    def _add_churn_policy_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--incremental",
            action="store_true",
            help=(
                "enable the warm replan rung: rebase or delta-solve "
                "instead of a cold replan when the workload is "
                "unchanged (escalates to the full replan on failure)"
            ),
        )
        p.add_argument(
            "--max-blast-fraction",
            type=float,
            default=0.3,
            help=(
                "escalate past the warm rung when more than this "
                "fraction of MATs is orphaned (default: 0.3)"
            ),
        )
        p.add_argument(
            "--replan-budget",
            type=float,
            default=None,
            help=(
                "wall-clock budget per replan in seconds; over budget "
                "falls back to the cheapest local patch (default: no "
                "budget, fully deterministic histories)"
            ),
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=2,
            help="replan retries on deployment errors",
        )
        p.add_argument(
            "--debounce",
            type=float,
            default=0.0,
            help=(
                "coalesce events closer than this many (virtual) "
                "seconds into one replan"
            ),
        )
        p.add_argument(
            "--report-out",
            default=None,
            help="write the disruption report JSON to this path",
        )
        p.add_argument(
            "--plans-dir",
            default=None,
            help="write every plan version + history.json to this dir",
        )
        p.add_argument(
            "--strict",
            action="store_true",
            help="exit 1 when any event batch failed to converge",
        )
        _add_engine_flag(p, default="analytic")
        _add_connect_flag(p)

    cr = churn_sub.add_parser(
        "run", help="generate a seeded scenario and reconcile through it"
    )
    cr.add_argument("--workload", default="real:10")
    cr.add_argument("--topology", default="wan:16:24")
    cr.add_argument(
        "--seed",
        type=int,
        default=None,
        help="scenario seed (also seeds synthetic workloads/WANs)",
    )
    cr.add_argument("--events", type=int, default=8)
    cr.add_argument(
        "--scenario-out",
        default=None,
        help="save the generated scenario document for later replay",
    )
    _add_churn_policy_flags(cr)

    cp = churn_sub.add_parser(
        "replay", help="replay a saved (self-contained) scenario file"
    )
    cp.add_argument("scenario", help="scenario JSON path")
    cp.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override seed for workload/topology specs without one",
    )
    _add_churn_policy_flags(cp)

    cq = churn_sub.add_parser(
        "report", help="pretty-print a saved disruption report"
    )
    cq.add_argument("report", help="report JSON path")
    _add_engine_flag(cq, default=None)

    su = sub.add_parser(
        "suite",
        help=(
            "declarative experiment suites: one spec over workloads x "
            "topologies x frameworks x churn x traffic"
        ),
    )
    suite_sub = su.add_subparsers(dest="suite_command", required=True)

    sr = suite_sub.add_parser(
        "run",
        help="compile and run a suite spec (shipped name or file path)",
    )
    sr.add_argument(
        "spec",
        help=(
            "shipped spec name (see 'suite list') or a JSON/YAML "
            "spec file path"
        ),
    )
    sr.add_argument(
        "--out",
        default=None,
        help="write the suite report JSON document to this path",
    )
    _add_runner_flags(sr)
    _add_connect_flag(sr)

    suite_sub.add_parser(
        "list", help="list the shipped suite specs"
    )

    sva = suite_sub.add_parser(
        "validate",
        help="validate a spec and print its resolved cell plan",
    )
    sva.add_argument("spec", help="shipped spec name or spec file path")

    srp = suite_sub.add_parser(
        "report", help="pretty-print a saved suite report document"
    )
    srp.add_argument("report", help="suite report JSON path")

    sim = sub.add_parser(
        "simulate",
        help="evaluate end-to-end traffic impact of a deployment",
    )
    sim.add_argument("--workload", default="real:10")
    sim.add_argument("--topology", default="linear:3")
    sim.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for synthetic workloads and random WAN topologies",
    )
    sim.add_argument(
        "--mode", choices=("heuristic", "optimal"), default="heuristic"
    )
    sim.add_argument("--time-limit", type=float, default=30.0)
    _add_solver_profile_flag(sim)
    _add_engine_flag(sim, default="analytic")
    sim.add_argument(
        "--overhead",
        type=int,
        default=None,
        help=(
            "skip deployment and evaluate this scalar per-packet "
            "overhead on the uniform 5-hop path"
        ),
    )
    sim.add_argument(
        "--flows",
        type=int,
        default=0,
        help=(
            "evaluate a seeded heavy-tailed trace of this many flows "
            "(0 = one full-size message per coordinating pair)"
        ),
    )
    sim.add_argument(
        "--trace-seed", type=int, default=11, help="trace RNG seed"
    )
    sim.add_argument(
        "--payload",
        type=int,
        default=1024,
        help="nominal per-packet payload bytes",
    )
    sim.add_argument(
        "--message-bytes",
        type=int,
        default=1_000_000,
        help="message size for the non-trace flow model",
    )
    sim.add_argument(
        "--json", default=None, help="write the summary JSON here"
    )
    sim.add_argument(
        "--journal",
        default=None,
        help="append sim.* telemetry JSONL to this file",
    )
    _add_connect_flag(sim)

    return parser


def main(argv: Sequence[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "deploy":
        return _cmd_deploy(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "churn":
        return _cmd_churn(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "suite":
        return _cmd_suite(args)
    return _cmd_experiment(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
