"""Primal heuristics: cheap searches for early incumbents.

Branch & bound prunes with ``node bound >= incumbent``, so the sooner a
good incumbent exists the smaller the tree.  This module hosts the two
heuristics the solver runs (both profile-independent pure functions;
the solver decides when to call them and what telemetry to emit):

* :func:`round_to_feasible` — snap the integral coordinates of an LP
  point and keep the result only if it is feasible.  Free (one
  feasibility check), and on placement models whose relaxations are
  nearly integral it produces the optimum outright.
* :func:`bounded_dive` — iteratively fix the least-fractional integral
  variable (falling back to the opposite rounding direction when a fix
  makes the LP infeasible) and re-solve, up to ``max_rounds`` LP
  solves.  A bounded depth keeps worst-case cost predictable: a dive
  either reaches an integral vertex quickly or is abandoned.

When ``telemetry=True`` each call emits one ``solver.heuristic`` event
(``heuristic`` = "rounding" / "diving", ``success``, and the candidate
objective when found), which is how the fast profile makes heuristic
activity observable in the experiment journal.
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.telemetry import emit

_INT_TOL = 1e-6

#: Signature of the LP oracle the solver passes in: bounds -> linprog
#: result (the solver counts the LP solve and emits ``solver.lp``).
LpOracle = Callable[[List[Tuple[float, float]]], object]
#: Signature of the feasibility predicate over candidate points.
FeasibleFn = Callable[[np.ndarray], bool]


def round_to_feasible(
    x: np.ndarray,
    int_indices: List[int],
    feasible: FeasibleFn,
    c: Optional[np.ndarray] = None,
    telemetry: bool = False,
    sign: float = 1.0,
) -> Optional[np.ndarray]:
    """Round integral vars of an LP point; keep it only if feasible.

    ``sign`` converts minimize-space objectives back to the model's own
    sense for the telemetry payload (the solver passes -1 for
    maximization models).
    """
    candidate = x.copy()
    for idx in int_indices:
        candidate[idx] = round(candidate[idx])
    ok = feasible(candidate)
    if telemetry:
        emit(
            "solver.heuristic",
            heuristic="rounding",
            success=bool(ok),
            objective=(
                sign * float(c @ candidate)
                if ok and c is not None
                else None
            ),
        )
    return candidate if ok else None


def bounded_dive(
    lp: LpOracle,
    x0: np.ndarray,
    start_bounds: List[Tuple[float, float]],
    int_indices: List[int],
    feasible: FeasibleFn,
    c: np.ndarray,
    deadline: Optional[float] = None,
    max_rounds: int = 60,
    telemetry: bool = False,
    sign: float = 1.0,
) -> Optional[Tuple[np.ndarray, float]]:
    """Dive from an LP point toward an integral vertex.

    Each round fixes every already-integral variable plus the single
    least-fractional one, then re-solves the LP; this converges in a
    handful of LP rounds rather than one per variable.  Degenerate
    relaxations (e.g. min-switch-count objectives) sit on plateaus
    where rounding toward zero is always infeasible, so when the
    primary fix fails the opposite side is tried before the dive is
    abandoned.

    Returns ``(solution, objective)`` in minimize space when the dive
    reaches an integral feasible point, else None.  Aborts when
    ``deadline`` (perf_counter seconds) passes or after ``max_rounds``
    LP rounds.
    """
    bounds = list(start_bounds)
    x = x0
    result: Optional[Tuple[np.ndarray, float]] = None
    for _step in range(max_rounds):
        if deadline is not None and time.perf_counter() > deadline:
            break
        fractional = [
            idx
            for idx in int_indices
            if abs(x[idx] - round(x[idx])) > _INT_TOL
        ]
        if not fractional:
            candidate = x.copy()
            for idx in int_indices:
                candidate[idx] = round(candidate[idx])
            if feasible(candidate):
                result = (candidate, float(c @ candidate))
            break
        for idx in int_indices:
            if abs(x[idx] - round(x[idx])) <= _INT_TOL:
                value = float(round(x[idx]))
                lo, hi = bounds[idx]
                value = min(max(value, lo), hi)
                bounds[idx] = (value, value)
        idx = min(fractional, key=lambda i: abs(x[i] - round(x[i])))
        lo, hi = bounds[idx]
        primary = min(max(float(round(x[idx])), lo), hi)
        fallback = (
            math.ceil(x[idx]) if primary <= x[idx] else math.floor(x[idx])
        )
        fallback = min(max(float(fallback), lo), hi)
        res = None
        for value in dict.fromkeys((primary, fallback)):
            bounds[idx] = (value, value)
            res = lp(bounds)
            if res.status == 0:
                break
        if res is None or res.status != 0:
            break
        x = res.x
    if telemetry:
        emit(
            "solver.heuristic",
            heuristic="diving",
            success=result is not None,
            objective=sign * result[1] if result is not None else None,
        )
    return result
