"""Building a TDG from a data plane program.

Following the paper's program analyzer, the builder "enumerates every
pair of the MATs defined in the program to obtain all the execution
dependencies": for each ordered pair where one table executes before
another, it classifies the dependency and adds the corresponding edge.

Node names are qualified as ``"<program>.<mat>"`` so that TDGs from
different programs can be merged without name collisions; redundancy
detection during merging works on MAT signatures, not names.
"""

from __future__ import annotations

from typing import Optional

from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.tdg.dependencies import classify_dependency
from repro.tdg.graph import Tdg


def qualified_name(program_name: str, mat_name: str) -> str:
    """The TDG node name for a program's MAT."""
    return f"{program_name}.{mat_name}"


def _requalify(mat: Mat, new_name: str) -> Mat:
    """A copy of ``mat`` renamed for the merged namespace."""
    return Mat(
        name=new_name,
        match_fields=mat.match_fields,
        actions=mat.actions,
        capacity=mat.capacity,
        rules=mat.rules,
        resource_demand=mat.resource_demand,
        detailed_demand=mat.detailed_demand,
    )


def build_tdg(program: Program, name: Optional[str] = None) -> Tdg:
    """Convert ``program`` into its table dependency graph.

    Every ordered pair of tables ``(a, b)`` with ``a`` earlier in the
    pipeline is examined; a TDG edge is added whenever a match, action,
    successor or reverse-match dependency exists between them.

    Args:
        program: The source program.
        name: Graph name; defaults to the program name.

    Returns:
        A DAG whose edges carry dependency types but not yet metadata
        sizes (see :func:`repro.tdg.analysis.annotate_metadata_sizes`).
    """
    tdg = Tdg(name or program.name)
    renamed = {
        mat.name: _requalify(mat, qualified_name(program.name, mat.name))
        for mat in program.mats
    }
    for mat in program.mats:
        tdg.add_node(renamed[mat.name])

    mats = list(program.mats)
    for i, upstream in enumerate(mats):
        for downstream in mats[i + 1 :]:
            dep = classify_dependency(
                upstream,
                downstream,
                conditional=program.is_conditional(
                    upstream.name, downstream.name
                ),
            )
            if dep is None:
                continue
            tdg.add_edge(
                renamed[upstream.name].name,
                renamed[downstream.name].name,
                dep,
            )
    return tdg
