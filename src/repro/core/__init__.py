"""Hermes core: the paper's contribution.

The pipeline mirrors Figure 3:

1. :class:`ProgramAnalyzer` turns input programs into one merged,
   metadata-annotated TDG (Algorithm 1);
2. the optimization framework places every MAT on a pipeline stage of a
   programmable switch, either exactly (:class:`HermesMilp`, problem
   P#1 solved by branch & bound) or via the greedy heuristic
   (:class:`GreedyHeuristic`, Algorithm 2);
3. the result is a :class:`DeploymentPlan` whose inter-switch
   coordination cost is measured by :class:`CoordinationAnalysis`, and
   which the :class:`Backend` lowers to per-switch configurations.

:class:`Hermes` is the facade tying the steps together.
"""

from repro.core.deployment import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.core.stages import StageAssignmentError, assign_stages
from repro.core.analyzer import ProgramAnalyzer
from repro.core.delta import DeltaFormulation, select_delta_candidates
from repro.core.formulation import HermesMilp, MilpFormulation
from repro.core.formulation_stagewise import StagewiseMilp
from repro.core.replication import replicate_cheap_hubs, replication_cost
from repro.core.heuristic import GreedyHeuristic, split_tdg
from repro.core.coordination import CoordinationAnalysis, MetadataChannel
from repro.core.backend import Backend, SwitchConfig
from repro.core.verification import DataflowError, DataflowReport, verify_dataflow
from repro.core.explain import OverheadReport, explain_overhead
from repro.core.refine import refine_plan
from repro.core.hermes import Hermes, HermesResult

__all__ = [
    "Backend",
    "CoordinationAnalysis",
    "DataflowError",
    "DataflowReport",
    "DeltaFormulation",
    "DeploymentError",
    "DeploymentPlan",
    "GreedyHeuristic",
    "Hermes",
    "HermesMilp",
    "HermesResult",
    "MatPlacement",
    "MetadataChannel",
    "MilpFormulation",
    "OverheadReport",
    "ProgramAnalyzer",
    "StageAssignmentError",
    "StagewiseMilp",
    "SwitchConfig",
    "assign_stages",
    "explain_overhead",
    "refine_plan",
    "replicate_cheap_hubs",
    "replication_cost",
    "select_delta_candidates",
    "split_tdg",
    "verify_dataflow",
]
