"""First fit by level and size (FFLS).

FFL with a size-aware twist: within a level the largest MATs are
placed first, the standard decreasing-first-fit improvement for bin
packing.  Still oblivious to metadata sizes.
"""

from __future__ import annotations

from typing import List

from repro.baselines.ffl import Ffl, mat_levels
from repro.tdg.graph import Tdg


class Ffls(Ffl):
    """The FFLS baseline: first fit by level, size-descending."""

    name = "FFLS"

    def level_order(self, segment: Tdg) -> List[str]:
        levels = mat_levels(segment)
        return sorted(
            segment.node_names,
            key=lambda a: (
                levels[a],
                -segment.node(a).resource_demand,
                a,
            ),
        )
