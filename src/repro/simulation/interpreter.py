"""An executable interpreter for deployed programs.

The structural validators (:meth:`DeploymentPlan.validate`,
:func:`repro.core.verification.verify_dataflow`) prove a plan *could*
process packets correctly.  This interpreter actually does it: a packet
— a mapping of header-field names to values — is pushed through the
deployment, executing every MAT's matching rule and action with
concrete semantics:

* ``MODIFY_FIELD`` writes the firing rule's action data (or zero);
* ``HASH`` computes a deterministic CRC over the read fields;
* ``COUNTER``/``REGISTER`` update per-MAT stateful arrays indexed by
  the read value and write back the new count;
* ``FORWARD`` records the egress decision, ``DROP`` ends processing.

Metadata behaves exactly as the coordination machinery dictates: it is
pipeline-local, so when the packet leaves a switch only the fields in
that switch's outgoing piggyback headers survive, materialized into the
destination's arrival buffer.  A MAT that needs metadata its switch
never received raises :class:`MissingMetadataError` — making the
interpreter an end-to-end oracle for coordination correctness.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.coordination import CoordinationAnalysis
from repro.core.deployment import DeploymentPlan
from repro.core.verification import verify_dataflow
from repro.dataplane.actions import Action, ActionPrimitive
from repro.dataplane.mat import Mat


class MissingMetadataError(RuntimeError):
    """A MAT needed metadata that never reached its switch."""


@dataclass
class ExecutionTrace:
    """What happened to one packet.

    Attributes:
        visited_switches: Switches in visit order.
        fired: (switch, MAT, action) triples in execution order.
        final_fields: Field values after the last switch.
        dropped: Whether a DROP action ended processing.
        egress_port: Last FORWARD decision, if any.
    """

    visited_switches: List[str] = field(default_factory=list)
    fired: List[Tuple[str, str, str]] = field(default_factory=list)
    final_fields: Dict[str, int] = field(default_factory=dict)
    dropped: bool = False
    egress_port: Optional[int] = None

    def actions_of(self, mat_name: str) -> List[str]:
        return [action for _sw, mat, action in self.fired if mat == mat_name]


def _crc_hash(values: List[int]) -> int:
    data = b"".join(v.to_bytes(8, "big", signed=False) for v in values)
    return zlib.crc32(data)


class PlanInterpreter:
    """Executes packets against a validated deployment plan.

    Stateful tables (counters/registers) persist across packets, so a
    sequence of sends observes counting behaviour.

    Args:
        plan: A validated deployment plan.
    """

    def __init__(self, plan: DeploymentPlan) -> None:
        self.plan = plan
        self.coordination = CoordinationAnalysis(plan)
        # Visit order including recirculations, from the dataflow
        # verifier's execution order.
        report = verify_dataflow(plan)
        self._visit_plan = self._visits_from(report.execution_order)
        # Per-MAT stateful arrays.
        self._registers: Dict[str, Dict[int, int]] = {}
        self._field_widths: Dict[str, int] = {}
        for mat in plan.tdg.mats:
            for fld in list(mat.match_fields) + list(mat.read_fields):
                self._field_widths[fld.name] = fld.width_bits

    def _visits_from(
        self, execution_order: List[str]
    ) -> List[Tuple[str, List[str]]]:
        """Compress the MAT execution order into per-switch visits."""
        visits: List[Tuple[str, List[str]]] = []
        for mat_name in execution_order:
            switch = self.plan.switch_of(mat_name)
            if visits and visits[-1][0] == switch:
                visits[-1][1].append(mat_name)
            else:
                visits.append((switch, [mat_name]))
        return visits

    # ------------------------------------------------------------------
    def run_packet(self, headers: Dict[str, int]) -> ExecutionTrace:
        """Push one packet through the deployment."""
        trace = ExecutionTrace()
        metadata: Dict[str, int] = {}
        # Piggyback buffers: destination switch -> delivered fields.
        inbox: Dict[str, Dict[str, int]] = {}
        packet = dict(headers)

        for switch, mats in self._visit_plan:
            if trace.dropped:
                break
            trace.visited_switches.append(switch)
            # Metadata is pipeline-local: entering a switch starts from
            # whatever the piggyback headers delivered.
            metadata = dict(inbox.get(switch, {}))
            for mat_name in mats:
                if trace.dropped:
                    break
                mat = self.plan.tdg.node(mat_name)
                self._execute_mat(
                    mat, mat_name, switch, packet, metadata, trace
                )
            # Leaving the switch: materialize outgoing channels.
            for (u, v), channel in self.coordination.channels.items():
                if u != switch:
                    continue
                delivered = inbox.setdefault(v, {})
                for fld, _offset in channel.layout:
                    if fld.name in metadata:
                        delivered[fld.name] = metadata[fld.name]

        trace.final_fields = {**packet, **metadata}
        return trace

    # ------------------------------------------------------------------
    def _execute_mat(
        self,
        mat: Mat,
        mat_name: str,
        switch: str,
        packet: Dict[str, int],
        metadata: Dict[str, int],
        trace: ExecutionTrace,
    ) -> None:
        def read(field_name: str, required: bool) -> Optional[int]:
            if field_name in metadata:
                return metadata[field_name]
            if field_name in packet:
                return packet[field_name]
            if required:
                raise MissingMetadataError(
                    f"MAT {mat_name!r} on {switch!r} needs field "
                    f"{field_name!r} which never arrived"
                )
            return None

        # Match phase: metadata keys are required; header fields
        # missing from the packet simply miss.
        key: Dict[str, int] = {}
        for fld in mat.match_fields:
            value = read(fld.name, required=fld.is_metadata)
            if value is not None:
                key[fld.name] = value

        action = self._select_action(mat, key)
        rule = self._select_rule(mat, key)
        if action is None:
            return  # table miss with no rules: no-op
        trace.fired.append((switch, mat_name, action.name))

        # P4 semantics: exactly one of the table's actions runs, but
        # the PHV declares every metadata field the table *may* write —
        # zero-initialized.  Downstream tables matching a field the
        # chosen action skipped see 0, not garbage (and coordination
        # channels, provisioned for the union, ship that 0).
        for fld in mat.modified_fields.metadata_only():
            metadata.setdefault(fld.name, 0)

        def write(field_name: str, value: int) -> None:
            width = self._field_widths.get(field_name, 32)
            value &= (1 << width) - 1
            if any(
                f.name == field_name and f.is_metadata
                for f in mat.modified_fields
            ):
                metadata[field_name] = value
            else:
                packet[field_name] = value

        if action.primitive is ActionPrimitive.DROP:
            trace.dropped = True
            return
        if action.primitive is ActionPrimitive.FORWARD:
            for fld in action.writes:
                port = (rule.action_value(fld.name) if rule else None) or 1
                write(fld.name, port)
                trace.egress_port = port
            return
        if action.primitive is ActionPrimitive.HASH:
            inputs = [
                read(f.name, required=f.is_metadata) or 0
                for f in action.reads
            ]
            for fld in action.writes:
                write(fld.name, _crc_hash(inputs))
            return
        if action.primitive in (
            ActionPrimitive.COUNTER,
            ActionPrimitive.REGISTER,
        ):
            index_values = [
                read(f.name, required=f.is_metadata) or 0
                for f in action.reads
            ]
            index = index_values[0] if index_values else 0
            table = self._registers.setdefault(mat_name, {})
            table[index] = table.get(index, 0) + 1
            for fld in action.writes:
                write(fld.name, table[index])
            return
        # MODIFY_FIELD / ENCAP / DECAP / NO_OP: write action data.
        for fld in action.writes:
            explicit = rule.action_value(fld.name) if rule else None
            if explicit is not None:
                write(fld.name, explicit)
            else:
                inputs = [
                    read(f.name, required=f.is_metadata) or 0
                    for f in action.reads
                ]
                write(fld.name, inputs[0] if inputs else 0)

    def _select_rule(self, mat: Mat, key: Dict[str, int]):
        matching = [
            rule
            for rule in mat.rules
            if rule.matches_packet(key, self._field_widths)
        ]
        if not matching:
            return None
        return max(matching, key=lambda r: r.priority)

    def _select_action(
        self, mat: Mat, key: Dict[str, int]
    ) -> Optional[Action]:
        rule = self._select_rule(mat, key)
        if rule is not None:
            return mat.action(rule.action_name)
        # Miss: default to the first action (P4 default_action).
        return mat.actions[0] if mat.actions else None

    def register_value(self, mat_name: str, index: int) -> int:
        """Inspect a MAT's stateful array (for tests and examples)."""
        return self._registers.get(mat_name, {}).get(index, 0)

    def registers(self, mat_name: str) -> Dict[int, int]:
        """A copy of a MAT's whole stateful array."""
        return dict(self._registers.get(mat_name, {}))
