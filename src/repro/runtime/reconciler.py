"""The reconciling controller: events in, plan versions out.

The :class:`Reconciler` drives a live deployment through a
:class:`~repro.runtime.scenario.Scenario`.  For every debounce batch of
events it folds the batch into the :class:`~repro.runtime.state.WorldState`,
re-deploys the live workload on the current network under explicit
policies, rebinds the runtime :class:`~repro.control.Controller` to the
new plan, and appends the plan to the :class:`~repro.runtime.store.PlanStore`.

Policies (:class:`ReconcilerPolicy`):

* **Debounce** — events closer than ``debounce_s`` apart coalesce into
  one batch and one replan, so a correlated burst (a rack power event
  failing three switches within milliseconds) doesn't thrash the
  deployment through three intermediate plans.
* **Time budget** — when a full replan exceeds ``replan_budget_s``
  wall-clock, its result is discarded in favor of the cheapest feasible
  local patch (:func:`repro.runtime.patch.cheapest_patch`): minimal
  churn now, global optimality sacrificed.  ``None`` (the default)
  disables the fallback, which also makes plan histories exactly
  reproducible across machines of different speeds.
* **Bounded retry** — a replan that raises ``DeploymentError`` is
  retried up to ``max_retries`` more times with exponential virtual
  backoff (``retry_backoff_s * 2**attempt`` added to the convergence
  time); if every attempt fails the old plan stays active and the
  batch is recorded as unconverged.

Everything interesting is emitted on the :mod:`repro.telemetry` bus as
``runtime.*`` events, so a journal-enabled run records the full story.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.control.controller import Controller, RebindReport
from repro.control.migration import MatMove, compute_moves
from repro.core.hermes import Hermes
from repro.dataplane.program import Program
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError, DeploymentPlan
from repro.plan.diff import PlanDiff, diff_plans
from repro.runtime.patch import cheapest_patch
from repro.runtime.scenario import NetworkEvent, Scenario, batch_events
from repro.runtime.state import WorldState
from repro.runtime.store import PlanStore
from repro.telemetry import emit

#: A pluggable deployment function: (programs, network) -> plan.
DeployFn = Callable[[Sequence[Program], Network], DeploymentPlan]


@dataclass(frozen=True)
class ReconcilerPolicy:
    """The reconciler's knobs; see the module docstring for semantics."""

    replan_budget_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.5
    debounce_s: float = 0.0

    def __post_init__(self) -> None:
        if self.replan_budget_s is not None and self.replan_budget_s < 0:
            raise ValueError("replan_budget_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.debounce_s < 0:
            raise ValueError("debounce_s must be >= 0")


@dataclass
class EventOutcome:
    """What one replan batch did to the deployment.

    ``transient_amax_bytes`` models the migration window where the old
    and new placements *coexist* (rules replayed, traffic still hitting
    both): each switch pair carries the sum of its old and new
    metadata bytes, and the transient ``A_max`` is the max over pairs
    of that sum — the worst per-packet overhead a flow can see while
    the migration is in flight.
    """

    batch_index: int
    time_s: float
    events: Tuple[NetworkEvent, ...]
    converged: bool
    attempts: int
    used_patch: bool
    error: Optional[str] = None
    fingerprint_before: str = ""
    fingerprint_after: str = ""
    forced_moves: int = 0
    optimization_moves: int = 0
    rules_replayed: int = 0
    mats_dropped: int = 0
    mats_added: int = 0
    old_amax_bytes: int = 0
    new_amax_bytes: int = 0
    transient_amax_bytes: int = 0
    convergence_time_s: float = 0.0
    plan_diff: Optional[PlanDiff] = None

    @property
    def amax_delta_bytes(self) -> int:
        """Positive when the batch degraded the byte overhead."""
        return self.new_amax_bytes - self.old_amax_bytes

    @property
    def moves(self) -> int:
        return self.forced_moves + self.optimization_moves

    def to_dict(self) -> Dict[str, object]:
        return {
            "batch_index": self.batch_index,
            "time_s": self.time_s,
            "events": [e.to_dict() for e in self.events],
            "converged": self.converged,
            "attempts": self.attempts,
            "used_patch": self.used_patch,
            "error": self.error,
            "fingerprint_before": self.fingerprint_before,
            "fingerprint_after": self.fingerprint_after,
            "forced_moves": self.forced_moves,
            "optimization_moves": self.optimization_moves,
            "rules_replayed": self.rules_replayed,
            "mats_dropped": self.mats_dropped,
            "mats_added": self.mats_added,
            "old_amax_bytes": self.old_amax_bytes,
            "new_amax_bytes": self.new_amax_bytes,
            "transient_amax_bytes": self.transient_amax_bytes,
            "convergence_time_s": self.convergence_time_s,
        }


@dataclass
class ReconcileResult:
    """One scenario's full run: history, outcomes, and the controller."""

    scenario: Scenario
    store: PlanStore
    outcomes: List[EventOutcome] = field(default_factory=list)
    controller: Optional[Controller] = None

    @property
    def initial_fingerprint(self) -> str:
        return self.store.versions[0].fingerprint

    @property
    def final_plan(self) -> DeploymentPlan:
        latest = self.store.latest
        assert latest is not None
        return latest.plan

    def report(
        self,
        engine: Optional[str] = None,
        load: Optional[float] = None,
    ):
        """The disruption metrics (:class:`repro.runtime.DisruptionReport`).

        With an ``engine`` name the report's traffic-impact columns
        are populated by evaluating FCT inflation over the A_max
        trajectory (see :meth:`DisruptionReport.attach_traffic`).
        A ``load`` selects the contention engine's congestion model
        (queueing included in the inflation ratios).
        """
        from repro.runtime.report import DisruptionReport

        report = DisruptionReport.from_result(self)
        if engine or load is not None:
            report.attach_traffic(
                engine=engine or "contention", load=load
            )
        return report


def transient_amax(
    old_plan: DeploymentPlan, new_plan: DeploymentPlan
) -> int:
    """Worst per-pair bytes while both placements coexist.

    During the migration window each pair can carry its old *and* new
    metadata (rules replayed, traffic hitting both placements), so the
    per-pair overheads add.  When the plans are placement-identical no
    migration happens and there is no coexistence window — the value is
    simply the (common) steady-state ``A_max``.
    """
    if old_plan.placements == new_plan.placements:
        return max(
            old_plan.max_metadata_bytes(), new_plan.max_metadata_bytes()
        )
    old_pairs = old_plan.pair_metadata_bytes()
    new_pairs = new_plan.pair_metadata_bytes()
    pairs = set(old_pairs) | set(new_pairs)
    if not pairs:
        return 0
    return max(
        old_pairs.get(pair, 0) + new_pairs.get(pair, 0) for pair in pairs
    )


class Reconciler:
    """Replays a scenario against a live deployment.

    Args:
        programs: The initial workload.
        network: The base substrate (the scenario mutates a world view
            of it, never the object itself).
        policy: Replan policies; defaults to
            ``ReconcilerPolicy()`` (no budget, two retries, no
            debounce).
        deploy_fn: Deployment function ``(programs, network) -> plan``;
            defaults to the Hermes heuristic.  Tests inject flaky or
            slow functions here to exercise the retry and timeout
            policies deterministically.
        prepare_fn: Optional hook called with the freshly bound
            :class:`Controller` after the initial deployment, before
            any event is replayed — the place to install runtime rules
            so migrations have something to replay (see
            :func:`seed_rules`).
        epsilon1 / epsilon2 / replicate_hubs: Forwarded to the default
            Hermes deployment when ``deploy_fn`` is not given.
    """

    def __init__(
        self,
        programs: Sequence[Program],
        network: Network,
        policy: Optional[ReconcilerPolicy] = None,
        deploy_fn: Optional[DeployFn] = None,
        prepare_fn: Optional[Callable[[Controller], None]] = None,
        epsilon1: float = float("inf"),
        epsilon2: Optional[int] = None,
        replicate_hubs=False,
    ) -> None:
        self.programs = list(programs)
        self.network = network
        self.policy = policy or ReconcilerPolicy()
        self.prepare_fn = prepare_fn
        if deploy_fn is None:
            hermes = Hermes(
                epsilon1=epsilon1,
                epsilon2=epsilon2,
                replicate_hubs=replicate_hubs,
            )
            deploy_fn = lambda progs, net: hermes.deploy(progs, net).plan  # noqa: E731
        self.deploy_fn = deploy_fn

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> ReconcileResult:
        """Replay every event batch; returns the full history."""
        world = WorldState(self.network, self.programs)
        store = PlanStore()
        emit(
            "runtime.scenario.start",
            scenario=scenario.name,
            seed=scenario.seed,
            events=len(scenario.events),
        )
        plan = self.deploy_fn(world.current_programs(), world.current_network())
        store.append(plan, time_s=0.0, reason="initial")
        controller = Controller(plan)
        if self.prepare_fn is not None:
            self.prepare_fn(controller)
        result = ReconcileResult(
            scenario=scenario, store=store, controller=controller
        )
        batches = batch_events(scenario.events, self.policy.debounce_s)
        for index, batch in enumerate(batches):
            outcome = self._reconcile_batch(
                index, batch, world, store, controller
            )
            result.outcomes.append(outcome)
        emit(
            "runtime.scenario.done",
            scenario=scenario.name,
            versions=len(store),
            digest=store.history_digest(),
        )
        return result

    # ------------------------------------------------------------------
    def _reconcile_batch(
        self,
        index: int,
        batch: List[NetworkEvent],
        world: WorldState,
        store: PlanStore,
        controller: Controller,
    ) -> EventOutcome:
        for event in batch:
            emit(
                "runtime.event",
                time_s=event.time_s,
                event_kind=event.kind,
                target=event.target,
            )
            world.apply(event)
        batch_time = batch[-1].time_s
        old_version = store.latest
        assert old_version is not None
        old_plan = old_version.plan
        emit(
            "runtime.replan.start",
            batch=index,
            time_s=batch_time,
            events=len(batch),
        )
        workload_changed = set(p.name for p in world.current_programs()) != {
            p.name for p in self.programs
        } or any(
            e.kind in ("workload_add", "workload_remove") for e in batch
        )
        new_plan, attempts, used_patch, elapsed_s, backoff_s, error = (
            self._replan(world, old_plan)
        )
        outcome = EventOutcome(
            batch_index=index,
            time_s=batch_time,
            events=tuple(batch),
            converged=new_plan is not None,
            attempts=attempts,
            used_patch=used_patch,
            error=error,
            fingerprint_before=old_version.fingerprint,
            old_amax_bytes=old_plan.max_metadata_bytes(),
            convergence_time_s=elapsed_s + backoff_s,
        )
        if new_plan is None:
            emit(
                "runtime.replan.failed",
                batch=index,
                attempts=attempts,
                error=error,
            )
            outcome.fingerprint_after = old_version.fingerprint
            outcome.new_amax_bytes = outcome.old_amax_bytes
            outcome.transient_amax_bytes = outcome.old_amax_bytes
            return outcome

    # The old controller state feeds the replay accounting *before*
    # rebinding flushes it.
        installed = {
            name: controller.rules_to_replay(name)
            for name in old_plan.placements
            if name in new_plan.placements
        }
        vanished = world.vanished_hosts(old_plan.occupied_switches())
        moves, _unchanged = compute_moves(
            old_plan, new_plan, installed, vanished
        )
        rebind = controller.rebind(new_plan)
        version = store.append(new_plan, time_s=batch_time, reason=(
            "patch" if used_patch else "replan"
        ))
        self._fill_outcome(outcome, old_plan, new_plan, moves, rebind)
        outcome.fingerprint_after = version.fingerprint
        emit(
            "runtime.rebind",
            batch=index,
            replayed_rules=rebind.replayed_rules,
            moved=len(rebind.moved),
            dropped=len(rebind.dropped),
            added=len(rebind.added),
        )
        emit(
            "runtime.converged",
            batch=index,
            version=version.version,
            fingerprint=version.fingerprint,
            amax_bytes=outcome.new_amax_bytes,
            forced_moves=outcome.forced_moves,
            optimization_moves=outcome.optimization_moves,
            used_patch=used_patch,
            workload_changed=workload_changed,
        )
        return outcome

    @staticmethod
    def _fill_outcome(
        outcome: EventOutcome,
        old_plan: DeploymentPlan,
        new_plan: DeploymentPlan,
        moves: List[MatMove],
        rebind: RebindReport,
    ) -> None:
        outcome.forced_moves = sum(1 for m in moves if m.forced)
        outcome.optimization_moves = len(moves) - outcome.forced_moves
        outcome.rules_replayed = sum(m.rules_to_replay for m in moves)
        outcome.mats_dropped = len(rebind.dropped)
        outcome.mats_added = len(rebind.added)
        outcome.new_amax_bytes = new_plan.max_metadata_bytes()
        outcome.transient_amax_bytes = transient_amax(old_plan, new_plan)
        outcome.plan_diff = diff_plans(old_plan, new_plan)

    # ------------------------------------------------------------------
    def _replan(
        self, world: WorldState, old_plan: DeploymentPlan
    ) -> Tuple[
        Optional[DeploymentPlan], int, bool, float, float, Optional[str]
    ]:
        """One policy-governed replan.

        Returns ``(plan, attempts, used_patch, elapsed_s, backoff_s,
        error)``; ``plan`` is None when every attempt failed.
        """
        policy = self.policy
        programs = world.current_programs()
        network = world.current_network()
        workload_unchanged = _same_workload(old_plan, programs)
        attempts = 0
        backoff_s = 0.0
        last_error: Optional[str] = None
        while attempts <= policy.max_retries:
            attempts += 1
            start = _time.perf_counter()
            try:
                plan = self.deploy_fn(programs, network)
            except DeploymentError as exc:
                last_error = str(exc)
                emit(
                    "runtime.replan.retry",
                    attempt=attempts,
                    error=last_error,
                )
                if attempts <= policy.max_retries:
                    backoff_s += policy.retry_backoff_s * (
                        2 ** (attempts - 1)
                    )
                continue
            elapsed = _time.perf_counter() - start
            if (
                policy.replan_budget_s is not None
                and elapsed > policy.replan_budget_s
                and workload_unchanged
            ):
                emit(
                    "runtime.replan.fallback",
                    elapsed_s=elapsed,
                    budget_s=policy.replan_budget_s,
                )
                try:
                    patched = cheapest_patch(old_plan, network)
                except DeploymentError as exc:
                    # The patch found no feasible local repair; the
                    # over-budget full replan is still a valid plan, so
                    # keep it rather than fail the batch.
                    emit(
                        "runtime.replan.patch_failed", error=str(exc)
                    )
                    return plan, attempts, False, elapsed, backoff_s, None
                return patched, attempts, True, elapsed, backoff_s, None
            return plan, attempts, False, elapsed, backoff_s, None
        return None, attempts, False, 0.0, backoff_s, last_error


def seed_rules(
    controller: Controller, per_mat: int = 4
) -> int:
    """Install deterministic runtime rules into every deployed table.

    The reproduction's program models carry empty baseline rule sets,
    so without this a migration replays nothing and the disruption
    report under-counts.  For each MAT with at least one match field
    and one action, installs up to ``per_mat`` exact-match rules (or
    fewer if capacity is tight).  Returns the total installed.

    Designed as a :class:`Reconciler` ``prepare_fn``:
    ``Reconciler(..., prepare_fn=seed_rules)``.
    """
    from repro.dataplane.rules import MatchKind, MatchSpec, Rule

    installed = 0
    for mat_name in sorted(controller.plan.placements):
        mat = controller.plan.tdg.node(mat_name)
        fields = sorted(mat.match_fields.names)
        actions = sorted(a.name for a in mat.actions)
        if not fields or not actions:
            continue
        handle = controller.table(mat_name)
        count = min(per_mat, handle.free_entries)
        for value in range(count):
            controller.install_rule(
                mat_name,
                Rule(
                    matches=(
                        MatchSpec(fields[0], MatchKind.EXACT, value),
                    ),
                    action_name=actions[0],
                ),
            )
            installed += 1
    return installed


def _same_workload(
    old_plan: DeploymentPlan, programs: Sequence[Program]
) -> bool:
    """Whether ``programs`` still matches the plan's deployed MAT set.

    MAT names in the merged TDG are ``<program>.<mat>``-qualified, so
    comparing program-name prefixes is sufficient and cheap.
    """
    deployed = {name.split(".", 1)[0] for name in old_plan.placements}
    return deployed == {p.name for p in programs}
