"""The versioned ``SuiteReport`` artifact a suite run produces.

One run -> one report: the resolved spec, per-cell summaries (sweep
coordinates, cache flags, deterministic record fields — never
wall-clock), and the aggregated tables.  ``render()`` reproduces the
historical experiment stdout byte for byte (the golden tests compare
against the pre-refactor modules), and ``to_dict``/``from_dict`` give
the same round-trippable JSON contract as the plan and scenario
artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

REPORT_VERSION = "repro.suite-report/v1"


@dataclass
class SuiteReport:
    """Outcome of one :func:`~repro.suite.compiler.run_suite` call."""

    name: str
    kind: str
    title: str = ""
    spec: Dict[str, Any] = field(default_factory=dict)
    cells: List[Dict[str, Any]] = field(default_factory=list)
    tables: List[str] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def cached_cells(self) -> int:
        return sum(1 for c in self.cells if c.get("cached"))

    def render(self) -> str:
        """The aggregated tables, exactly as the legacy modules print
        them (blocks joined by a blank line)."""
        return "\n\n".join(self.tables)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "spec": self.spec,
            "cells": self.cells,
            "tables": self.tables,
            "meta": self.meta,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "SuiteReport":
        version = doc.get("version")
        if version != REPORT_VERSION:
            raise ValueError(
                f"unsupported suite report version {version!r} "
                f"(expected {REPORT_VERSION!r})"
            )
        unknown = set(doc) - {
            "version", "name", "kind", "title", "spec", "cells",
            "tables", "meta",
        }
        if unknown:
            raise ValueError(
                f"unknown suite report keys: {sorted(unknown)}"
            )
        return SuiteReport(
            name=doc["name"],
            kind=doc["kind"],
            title=doc.get("title", ""),
            spec=doc.get("spec", {}),
            cells=doc.get("cells", []),
            tables=doc.get("tables", []),
            meta=doc.get("meta", {}),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @staticmethod
    def load(path: str) -> "SuiteReport":
        with open(path, "r", encoding="utf-8") as fh:
            return SuiteReport.from_dict(json.load(fh))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())
            fh.write("\n")


__all__ = ["REPORT_VERSION", "SuiteReport"]
