"""Differential tests: PlanBuilder's incremental metrics vs recompute.

The builder maintains pair byte totals, ``A_max``, total bytes, stage
loads and switch occupancy incrementally across arbitrary
place/move/unplace sequences.  These tests drive random mutation
sequences (Hypothesis) and check, after every operation, that the
incremental state equals a from-scratch recomputation — and that
``undo`` restores the exact prior state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.switch import Switch
from repro.network.topology import Link, Network
from repro.plan import DeploymentError, DeploymentPlan, PlanBuilder
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg

SWITCHES = ("s0", "s1", "s2")


def make_network():
    net = Network("prop")
    for name in SWITCHES:
        net.add_switch(Switch(name, num_stages=12, stage_capacity=10.0))
    net.add_link(Link("s0", "s1", 1.0, 10.0))
    net.add_link(Link("s1", "s2", 1.0, 10.0))
    return net


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_tdg(draw, max_nodes=7):
    """A forward-edge DAG with byte-annotated dependencies."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    tdg = Tdg("prop")
    demands = draw(
        st.lists(
            st.sampled_from([0.1, 0.25, 0.5, 1.0]),
            min_size=n,
            max_size=n,
        )
    )
    for i, demand in enumerate(demands):
        tdg.add_node(
            Mat(f"m{i}", actions=[no_op()], resource_demand=demand)
        )
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                tdg.add_edge(
                    f"m{i}",
                    f"m{j}",
                    DependencyType.MATCH,
                    draw(st.integers(min_value=0, max_value=64)),
                )
    return tdg


def draw_stages(draw):
    start = draw(st.integers(min_value=1, max_value=10))
    span = draw(st.integers(min_value=1, max_value=2))
    return tuple(range(start, start + span))


# ----------------------------------------------------------------------
# From-scratch reference of the builder's incremental state
# ----------------------------------------------------------------------
def reference_state(tdg, placements):
    """Recompute every metric the builder maintains incrementally."""
    pair_bytes = {}
    for edge in tdg.edges:
        up = placements.get(edge.upstream)
        down = placements.get(edge.downstream)
        if up is None or down is None or up.switch == down.switch:
            continue
        key = (up.switch, down.switch)
        pair_bytes[key] = pair_bytes.get(key, 0) + edge.metadata_bytes
    loads = {}
    for placement in placements.values():
        share = tdg.node(placement.mat_name).resource_demand / len(
            placement.stages
        )
        per_switch = loads.setdefault(placement.switch, {})
        for stage in placement.stages:
            per_switch[stage] = per_switch.get(stage, 0.0) + share
    return {
        "pair_bytes": pair_bytes,
        "amax": max(pair_bytes.values()) if pair_bytes else 0,
        "total": sum(pair_bytes.values()),
        "switches": {p.switch for p in placements.values()},
        "loads": loads,
    }


def assert_matches_reference(builder, tdg):
    ref = reference_state(tdg, builder.placements)
    assert builder.pair_metadata_bytes() == ref["pair_bytes"]
    assert builder.max_metadata_bytes() == ref["amax"]
    assert builder.total_metadata_bytes() == ref["total"]
    assert set(builder.occupied_switches()) == ref["switches"]
    assert builder.num_occupied_switches() == len(ref["switches"])
    for switch in SWITCHES:
        got = builder.stage_utilization(switch)
        want = ref["loads"].get(switch, {})
        assert got.keys() == want.keys(), switch
        for stage, load in want.items():
            assert got[stage] == pytest.approx(load), (switch, stage)


def apply_random_op(draw, builder, tdg):
    """One randomly chosen valid mutation; returns its undo token."""
    placed = sorted(builder.placements)
    unplaced = sorted(set(tdg.node_names) - set(placed))
    choices = []
    if unplaced:
        choices.append("place")
    if placed:
        choices.extend(["unplace", "move"])
    op = draw(st.sampled_from(choices))
    if op == "place":
        name = draw(st.sampled_from(unplaced))
        switch = draw(st.sampled_from(SWITCHES))
        return builder.place(name, switch, draw_stages(draw))
    if op == "unplace":
        return builder.unplace(draw(st.sampled_from(placed)))
    name = draw(st.sampled_from(placed))
    switch = draw(st.sampled_from(SWITCHES))
    stages = draw_stages(draw) if draw(st.booleans()) else None
    return builder.move(name, switch, stages)


# ----------------------------------------------------------------------
# Differential properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(tdg=random_tdg(), data=st.data())
def test_incremental_metrics_equal_recompute(tdg, data):
    builder = PlanBuilder(tdg, make_network())
    draw = data.draw
    for _ in range(data.draw(st.integers(min_value=1, max_value=12))):
        apply_random_op(draw, builder, tdg)
        assert_matches_reference(builder, tdg)


@settings(max_examples=60, deadline=None)
@given(tdg=random_tdg(), data=st.data())
def test_undo_restores_exact_state(tdg, data):
    builder = PlanBuilder(tdg, make_network())
    draw = data.draw
    # A random prefix to start from a non-trivial state.
    for _ in range(data.draw(st.integers(min_value=0, max_value=6))):
        apply_random_op(draw, builder, tdg)
    before = {
        "placements": builder.placements,
        "pair_bytes": builder.pair_metadata_bytes(),
        "amax": builder.max_metadata_bytes(),
        "total": builder.total_metadata_bytes(),
        "switches": sorted(builder.occupied_switches()),
        "loads": {s: builder.stage_utilization(s) for s in SWITCHES},
    }
    token = apply_random_op(draw, builder, tdg)
    builder.undo(token)
    assert builder.placements == before["placements"]
    assert builder.pair_metadata_bytes() == before["pair_bytes"]
    assert builder.max_metadata_bytes() == before["amax"]
    assert builder.total_metadata_bytes() == before["total"]
    assert sorted(builder.occupied_switches()) == before["switches"]
    for switch in SWITCHES:
        got = builder.stage_utilization(switch)
        want = before["loads"][switch]
        assert got.keys() == want.keys()
        for stage, load in want.items():
            assert got[stage] == pytest.approx(load)


@settings(max_examples=40, deadline=None)
@given(tdg=random_tdg(), data=st.data())
def test_fully_placed_builder_matches_plan(tdg, data):
    """With every MAT placed, builder metrics equal DeploymentPlan's."""
    builder = PlanBuilder(tdg, make_network())
    draw = data.draw
    for name in draw(st.permutations(sorted(tdg.node_names))):
        builder.place(name, draw(st.sampled_from(SWITCHES)), draw_stages(draw))
    plan = DeploymentPlan(tdg, make_network(), builder.placements)
    assert builder.pair_metadata_bytes() == plan.pair_metadata_bytes()
    assert builder.max_metadata_bytes() == plan.max_metadata_bytes()
    assert builder.total_metadata_bytes() == plan.total_metadata_bytes()
    assert builder.num_occupied_switches() == plan.num_occupied_switches()
    for switch in SWITCHES:
        assert builder.stage_utilization(switch) == pytest.approx(
            plan.stage_utilization(switch)
        )


# ----------------------------------------------------------------------
# Unit behavior
# ----------------------------------------------------------------------
def simple_tdg():
    tdg = Tdg("unit")
    for name in ("a", "b", "c"):
        tdg.add_node(Mat(name, actions=[no_op()], resource_demand=0.3))
    tdg.add_edge("a", "b", DependencyType.MATCH, 8)
    tdg.add_edge("b", "c", DependencyType.MATCH, 4)
    return tdg


class TestBuilderBasics:
    def test_double_place_rejected(self):
        builder = PlanBuilder(simple_tdg(), make_network())
        builder.place("a", "s0", (1,))
        with pytest.raises(DeploymentError, match="already placed"):
            builder.place("a", "s1", (1,))

    def test_unplace_missing_rejected(self):
        builder = PlanBuilder(simple_tdg(), make_network())
        with pytest.raises(DeploymentError, match="not placed"):
            builder.unplace("a")

    def test_move_missing_rejected(self):
        builder = PlanBuilder(simple_tdg(), make_network())
        with pytest.raises(DeploymentError, match="not placed"):
            builder.move("a", "s1")

    def test_move_keeps_stages_by_default(self):
        builder = PlanBuilder(simple_tdg(), make_network())
        builder.place("a", "s0", (2, 3))
        builder.move("a", "s1")
        assert builder.placements["a"].stages == (2, 3)
        assert builder.placements["a"].switch == "s1"

    def test_zero_byte_pair_still_tracked(self):
        """Pairs linked only by 0-byte edges must still demand a route."""
        tdg = Tdg("zero")
        for name in ("a", "b"):
            tdg.add_node(Mat(name, actions=[no_op()], resource_demand=0.1))
        tdg.add_edge("a", "b", DependencyType.MATCH, 0)
        builder = PlanBuilder(tdg, make_network())
        builder.place("a", "s0", (1,))
        builder.place("b", "s1", (1,))
        assert builder.pair_metadata_bytes() == {("s0", "s1"): 0}
        builder.unplace("b")
        assert builder.pair_metadata_bytes() == {}

    def test_build_validates_by_default(self):
        builder = PlanBuilder(simple_tdg(), make_network())
        builder.place("a", "s0", (1,))
        with pytest.raises(DeploymentError, match="unplaced"):
            builder.build()

    def test_route_shortest_and_build(self):
        from repro.network.paths import PathEnumerator

        net = make_network()
        builder = PlanBuilder(simple_tdg(), net)
        builder.place("a", "s0", (1,))
        builder.place("b", "s1", (1,))
        builder.place("c", "s2", (1,))
        builder.route_shortest(PathEnumerator(net))
        plan = builder.build()
        assert plan.max_metadata_bytes() == 8
        assert set(plan.routing) == {("s0", "s1"), ("s1", "s2")}

    def test_prune_routes_drops_stale_pairs(self):
        from repro.network.paths import PathEnumerator

        net = make_network()
        builder = PlanBuilder(simple_tdg(), net)
        builder.place("a", "s0", (1,))
        builder.place("b", "s1", (1,))
        builder.place("c", "s2", (1,))
        builder.route_shortest(PathEnumerator(net))
        builder.move("c", "s1", (2,))
        builder.prune_routes()
        assert set(builder.routing) == {("s0", "s1")}

    def test_from_plan_round_trip(self):
        from repro.network.paths import PathEnumerator

        net = make_network()
        builder = PlanBuilder(simple_tdg(), net)
        builder.place("a", "s0", (1,))
        builder.place("b", "s1", (1,))
        builder.place("c", "s2", (1,))
        builder.route_shortest(PathEnumerator(net))
        plan = builder.build()
        again = PlanBuilder.from_plan(plan).build()
        assert again.placements == plan.placements
        assert again.max_metadata_bytes() == plan.max_metadata_bytes()
