"""Tests for the context-local telemetry bus.

The regression that matters here: sinks used to live in a
``threading.local``, which does not follow asyncio tasks — two server
sessions multiplexed on one event loop would interleave (or steal)
each other's event streams.  The bus now stores the sink in a
:class:`contextvars.ContextVar`, which is a drop-in for threads and
correct for tasks; these tests pin both behaviours.
"""

from __future__ import annotations

import asyncio
import threading

from repro.telemetry import Recorder, attached, current_sink, emit, tee


class TestBusBasics:
    def test_emit_without_sink_is_noop(self):
        emit("unobserved", value=1)  # must not raise
        assert current_sink() is None

    def test_attach_and_emit(self):
        rec = Recorder()
        with attached(rec):
            assert current_sink() is rec
            emit("solver.lp", nodes=3)
        assert current_sink() is None
        assert rec.count("solver.lp") == 1
        assert rec.events[0] == {"kind": "solver.lp", "nodes": 3}

    def test_nested_attachments_stack(self):
        outer, inner = Recorder(), Recorder()
        with attached(outer):
            emit("a")
            with attached(inner):
                emit("b")
            emit("c")
        assert [e["kind"] for e in outer.events] == ["a", "c"]
        assert [e["kind"] for e in inner.events] == ["b"]

    def test_tee_fans_out_in_order(self):
        first, second = Recorder(), Recorder()
        with attached(tee(first, second)):
            emit("x", i=0)
            emit("y", i=1)
        assert first.events == second.events
        assert [e["kind"] for e in first.events] == ["x", "y"]


class TestThreadIsolation:
    def test_threads_never_share_a_sink(self):
        """The historical thread-local contract still holds."""
        results = {}

        def worker(name: str) -> None:
            rec = Recorder()
            with attached(rec):
                for i in range(50):
                    emit(name, i=i)
            results[name] = rec.events

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, events in results.items():
            assert len(events) == 50
            assert all(e["kind"] == name for e in events)

    def test_fresh_thread_starts_unattached(self):
        seen = {}
        with attached(Recorder()):
            t = threading.Thread(
                target=lambda: seen.setdefault("sink", current_sink())
            )
            t.start()
            t.join()
        assert seen["sink"] is None


class TestTaskIsolation:
    """Two sessions on one event loop keep separate event streams."""

    def test_two_concurrently_attached_sinks_on_one_loop(self):
        async def session(name: str, rec: Recorder, gate: asyncio.Event):
            with attached(rec):
                emit(name, step="before")
                # Yield control while attached: under threading.local
                # the other task's attach would overwrite this task's
                # sink and both streams would land in one recorder.
                await gate.wait()
                emit(name, step="after")
                await asyncio.sleep(0)
                emit(name, step="last")

        async def main():
            a, b = Recorder(), Recorder()
            gate = asyncio.Event()
            ta = asyncio.ensure_future(session("alpha", a, gate))
            tb = asyncio.ensure_future(session("beta", b, gate))
            await asyncio.sleep(0)  # both tasks attach, then suspend
            gate.set()
            await asyncio.gather(ta, tb)
            return a, b

        a, b = asyncio.run(main())
        assert [e["kind"] for e in a.events] == ["alpha"] * 3
        assert [e["kind"] for e in b.events] == ["beta"] * 3

    def test_task_attachment_does_not_leak_to_loop(self):
        async def main():
            rec = Recorder()

            async def attach_and_finish():
                with attached(rec):
                    emit("inner")
                    await asyncio.sleep(0)

            await asyncio.ensure_future(attach_and_finish())
            # Back in the loop's own context: nothing attached.
            emit("outer.lost")
            return rec, current_sink()

        rec, sink_after = asyncio.run(main())
        assert [e["kind"] for e in rec.events] == ["inner"]
        assert sink_after is None
