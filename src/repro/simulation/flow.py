"""Flows and packetization under MTU pressure.

The mechanism the paper measures: a flow has a fixed amount of
application data; coordination metadata occupies part of every packet's
MTU budget, so the per-packet payload shrinks and the packet count
grows.  Following §II-B, the sender "adaptively tunes" the payload so
``payload + overhead + framing <= MTU``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.simulation.packet import BASE_HEADER_BYTES, Packet

#: Ethernet MTU used throughout the experiments.
DEFAULT_MTU = 1500

#: Minimum payload a packet must still carry.  Overhead-oblivious
#: deployments can produce metadata headers beyond the whole MTU; real
#: deployments would fragment the metadata across packets, which we
#: model by letting the wire size exceed the nominal MTU while the
#: payload floor keeps goodput finite (and terrible, as it should be).
MIN_PAYLOAD_BYTES = 64


def widened_mtu(
    overhead_bytes: int,
    header_bytes: int = BASE_HEADER_BYTES,
    mtu: int = DEFAULT_MTU,
) -> int:
    """The MTU after the payload floor pushes it open.

    ``overhead + header + MIN_PAYLOAD_BYTES <= mtu`` must hold for a
    packet to carry any payload; when the overhead alone violates it,
    the wire size grows past the nominal MTU (metadata fragmentation,
    modeled as oversized frames).  This is the single home of that
    rule — the harness, Fig. 2, and the trace evaluator all build
    their measured flows through it.
    """
    return max(mtu, overhead_bytes + header_bytes + MIN_PAYLOAD_BYTES)


def flow_pair(
    message_bytes: int,
    packet_payload_bytes: int,
    overhead_bytes: int,
    flow_id: int = 0,
    header_bytes: int = BASE_HEADER_BYTES,
    mtu: int = DEFAULT_MTU,
) -> Tuple["Flow", "Flow"]:
    """(baseline, measured) flows for one overhead setting.

    The baseline carries zero overhead at the nominal MTU; the measured
    flow carries ``overhead_bytes`` inside :func:`widened_mtu`.  Every
    normalized FCT/goodput ratio in the repo divides metrics of the
    second flow by the first.
    """
    baseline = Flow(
        flow_id,
        message_bytes,
        packet_payload_bytes,
        overhead_bytes=0,
        mtu=mtu,
        header_bytes=header_bytes,
    )
    measured = Flow(
        flow_id,
        message_bytes,
        packet_payload_bytes,
        overhead_bytes=overhead_bytes,
        mtu=widened_mtu(overhead_bytes, header_bytes, mtu),
        header_bytes=header_bytes,
    )
    return baseline, measured


@dataclass(frozen=True)
class Flow:
    """A unidirectional message transfer.

    Attributes:
        flow_id: Identifier.
        message_bytes: Total application bytes to deliver.
        packet_payload_bytes: Nominal payload per packet before any
            overhead shrinks it (the paper's 512/1024/1500-byte packet
            sizes, minus framing).
        overhead_bytes: Metadata piggybacked per packet.
        mtu: Maximum wire size of one packet.
        header_bytes: Base framing per packet.
    """

    flow_id: int
    message_bytes: int
    packet_payload_bytes: int
    overhead_bytes: int = 0
    mtu: int = DEFAULT_MTU
    header_bytes: int = BASE_HEADER_BYTES

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        if self.packet_payload_bytes <= 0:
            raise ValueError("packet_payload_bytes must be positive")
        if self.effective_payload_bytes <= 0:
            raise ValueError(
                f"overhead {self.overhead_bytes}B + framing "
                f"{self.header_bytes}B leave no payload room within "
                f"MTU {self.mtu}"
            )

    @property
    def effective_payload_bytes(self) -> int:
        """Payload per packet after the overhead claims its MTU share."""
        room = self.mtu - self.overhead_bytes - self.header_bytes
        return min(self.packet_payload_bytes, room)

    @property
    def num_packets(self) -> int:
        """Packets needed to carry the whole message."""
        payload = self.effective_payload_bytes
        return -(-self.message_bytes // payload)  # ceil division

    @property
    def total_wire_bytes(self) -> int:
        """Bytes serialized per hop for the whole flow."""
        full = self.num_packets - 1
        last_payload = self.message_bytes - full * self.effective_payload_bytes
        per_packet_extra = self.overhead_bytes + self.header_bytes
        return (
            full * (self.effective_payload_bytes + per_packet_extra)
            + last_payload
            + per_packet_extra
        )


def packetize(flow: Flow) -> Iterator[Packet]:
    """Yield the flow's packets in order (last one may be short)."""
    payload = flow.effective_payload_bytes
    remaining = flow.message_bytes
    seq = 0
    while remaining > 0:
        take = min(payload, remaining)
        yield Packet(
            flow_id=flow.flow_id,
            seq=seq,
            payload_bytes=take,
            overhead_bytes=flow.overhead_bytes,
            header_bytes=flow.header_bytes,
        )
        remaining -= take
        seq += 1


def packet_list(flow: Flow) -> List[Packet]:
    """Materialized :func:`packetize` (convenience for tests)."""
    return list(packetize(flow))
