"""Unit tests for switches and topologies."""

import pytest

from repro.network.switch import Switch
from repro.network.topology import Link, Network


class TestSwitch:
    def test_defaults_are_tofino_like(self):
        s = Switch("s")
        assert s.programmable
        assert s.num_stages == 12
        assert s.total_capacity == pytest.approx(12.0)

    def test_non_programmable_has_no_capacity(self):
        assert Switch("s", programmable=False).total_capacity == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Switch("")
        with pytest.raises(ValueError):
            Switch("s", num_stages=0)
        with pytest.raises(ValueError):
            Switch("s", stage_capacity=0)
        with pytest.raises(ValueError):
            Switch("s", latency_us=-1)


class TestLink:
    def test_canonical_endpoint_order(self):
        link = Link("b", "a")
        assert link.key == ("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(KeyError):
            link.other("c")

    def test_latency_conversion(self):
        assert Link("a", "b", latency_ms=2.5).latency_us == 2500.0

    def test_validation(self):
        with pytest.raises(ValueError, match="self-loop"):
            Link("a", "a")
        with pytest.raises(ValueError):
            Link("a", "b", latency_ms=-1)
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth_gbps=0)


class TestNetwork:
    def build(self):
        net = Network("n")
        net.add_switch(Switch("a"))
        net.add_switch(Switch("b", programmable=False))
        net.add_switch(Switch("c"))
        net.connect("a", "b", latency_ms=1.0)
        net.connect("b", "c", latency_ms=2.0)
        return net

    def test_counts(self):
        net = self.build()
        assert net.num_switches == 3
        assert net.num_links == 2

    def test_rejects_duplicates(self):
        net = self.build()
        with pytest.raises(ValueError, match="duplicate switch"):
            net.add_switch(Switch("a"))
        with pytest.raises(ValueError, match="duplicate link"):
            net.connect("b", "a")

    def test_link_requires_known_switches(self):
        net = self.build()
        with pytest.raises(KeyError):
            net.connect("a", "ghost")

    def test_lookup(self):
        net = self.build()
        assert net.switch("a").name == "a"
        with pytest.raises(KeyError):
            net.switch("ghost")
        assert net.link("b", "a").key == ("a", "b")
        assert net.has_link("a", "b")
        assert not net.has_link("a", "c")

    def test_neighbors_and_degree(self):
        net = self.build()
        assert net.neighbors("b") == {"a", "c"}
        assert net.degree("b") == 2
        with pytest.raises(KeyError):
            net.neighbors("ghost")

    def test_programmable_filter(self):
        net = self.build()
        assert net.programmable_names() == ["a", "c"]

    def test_connectivity(self):
        net = self.build()
        assert net.is_connected()
        net.add_switch(Switch("island"))
        assert not net.is_connected()

    def test_empty_network_is_connected(self):
        assert Network().is_connected()

    def test_total_programmable_capacity(self):
        net = self.build()
        assert net.total_programmable_capacity() == pytest.approx(24.0)

    def test_contains_and_iter(self):
        net = self.build()
        assert "a" in net
        assert "ghost" not in net
        assert len(list(net)) == 3
