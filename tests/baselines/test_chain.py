"""Unit tests for the virtual-pipeline chain scheduler."""

import pytest

from repro.baselines.base import (
    build_switch_chain,
    route_all_pairs,
    schedule_on_chain,
)
from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.dataplane.actions import no_op
from repro.dataplane.mat import Mat
from repro.network.generators import linear_topology, random_wan
from repro.network.paths import PathEnumerator
from repro.tdg.dependencies import DependencyType
from repro.tdg.graph import Tdg


def chain_tdg(demands, bytes_per_edge=4):
    tdg = Tdg("seg")
    names = [f"m{i}" for i in range(len(demands))]
    for name, demand in zip(names, demands):
        tdg.add_node(Mat(name, actions=[no_op()], resource_demand=demand))
    for up, down in zip(names, names[1:]):
        tdg.add_edge(up, down, DependencyType.MATCH, bytes_per_edge)
    return tdg


class TestBuildSwitchChain:
    def test_only_programmable(self):
        net = random_wan(20, 30, seed=1, programmable_fraction=0.5)
        paths = PathEnumerator(net)
        chain = build_switch_chain(net, paths)
        programmable = set(net.programmable_names())
        assert set(chain) <= programmable

    def test_anchor_first_then_by_latency(self):
        net = linear_topology(4, link_latency_ms=1.0)
        paths = PathEnumerator(net)
        assert build_switch_chain(net, paths) == ["s0", "s1", "s2", "s3"]

    def test_requires_programmable(self):
        net = linear_topology(3, programmable=False)
        with pytest.raises(DeploymentError):
            build_switch_chain(net, PathEnumerator(net))


class TestScheduleOnChain:
    def test_spills_to_next_switch(self):
        tdg = chain_tdg([0.6] * 6)
        net = linear_topology(3, num_stages=2, stage_capacity=1.0)
        chain = ["s0", "s1", "s2"]
        placements = schedule_on_chain(
            tdg, tdg.topological_order(), net, chain
        )
        switches_used = {p.switch for p in placements.values()}
        assert len(switches_used) >= 3  # chain of 6 over 2-stage switches

    def test_dependencies_respected_across_chain(self):
        tdg = chain_tdg([0.6] * 6)
        net = linear_topology(3, num_stages=2, stage_capacity=1.0)
        chain = ["s0", "s1", "s2"]
        placements = schedule_on_chain(
            tdg, tdg.topological_order(), net, chain
        )
        index = {name: i for i, name in enumerate(chain)}
        for edge in tdg.edges:
            up = placements[edge.upstream]
            down = placements[edge.downstream]
            if up.switch == down.switch:
                assert up.last_stage < down.first_stage
            else:
                assert index[up.switch] < index[down.switch]

    def test_rejects_non_topological_order(self):
        tdg = chain_tdg([0.2, 0.2])
        net = linear_topology(2)
        with pytest.raises(DeploymentError, match="topological"):
            schedule_on_chain(tdg, ["m1", "m0"], net, ["s0", "s1"])

    def test_rejects_when_chain_full(self):
        tdg = chain_tdg([1.0] * 10)
        net = linear_topology(2, num_stages=2, stage_capacity=1.0)
        with pytest.raises(DeploymentError, match="cannot host"):
            schedule_on_chain(
                tdg, tdg.topological_order(), net, ["s0", "s1"]
            )

    def test_plan_validates_end_to_end(self):
        tdg = chain_tdg([0.6] * 6)
        net = linear_topology(4, num_stages=2, stage_capacity=1.0)
        paths = PathEnumerator(net)
        chain = build_switch_chain(net, paths)
        placements = schedule_on_chain(
            tdg, tdg.topological_order(), net, chain
        )
        plan = route_all_pairs(DeploymentPlan(tdg, net, placements), paths)
        plan.validate()
