"""Table dependency graphs (TDGs).

A TDG is a directed acyclic graph whose nodes are MATs and whose edges
are execution dependencies between MATs (Jose et al., NSDI'15).  Hermes
consumes programs exclusively through their merged TDG: the program
analyzer converts each input program to a TDG, merges all TDGs into one
(eliminating redundant MATs, following SPEED), and annotates every edge
with the number of metadata bytes ``A(a, b)`` that must cross switches
if its endpoints are placed apart.
"""

from repro.tdg.dependencies import DependencyType, classify_dependency
from repro.tdg.graph import CycleError, Tdg, TdgEdge
from repro.tdg.builder import build_tdg
from repro.tdg.merge import merge_tdgs
from repro.tdg.analysis import annotate_metadata_sizes, edge_metadata_bytes

__all__ = [
    "CycleError",
    "DependencyType",
    "Tdg",
    "TdgEdge",
    "annotate_metadata_sizes",
    "build_tdg",
    "classify_dependency",
    "edge_metadata_bytes",
    "merge_tdgs",
]
