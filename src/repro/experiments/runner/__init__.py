"""Parallel experiment runner: pool executor, result cache, telemetry.

The subsystem behind ``python -m repro exp* --workers N --cache-dir D
--journal J``:

* :mod:`~repro.experiments.runner.executor` — fans (framework x
  problem) cells across a process pool with deterministic result
  ordering and an inline serial fallback;
* :mod:`~repro.experiments.runner.cache_key` /
  :mod:`~repro.experiments.runner.cache` — content-addressed on-disk
  cache of :class:`~repro.experiments.harness.DeploymentRecord`
  results, keyed by a stable hash of (programs, network, framework
  config, harness params);
* :mod:`~repro.experiments.runner.telemetry` — per-run JSONL journal
  of the runner / deploy / solver event streams.
"""

from repro.experiments.runner.cache import ResultCache
from repro.experiments.runner.cache_key import (
    CACHE_KEY_VERSION,
    cache_key,
    framework_fingerprint,
    network_fingerprint,
    program_fingerprint,
)
from repro.experiments.runner.executor import (
    Cell,
    CellResult,
    ExperimentRunner,
    RunnerConfig,
    RunnerInterrupted,
    execute_cells,
)
from repro.experiments.runner.telemetry import (
    JournalWriter,
    count_events,
    read_journal,
)

__all__ = [
    "CACHE_KEY_VERSION",
    "Cell",
    "CellResult",
    "ExperimentRunner",
    "JournalWriter",
    "ResultCache",
    "RunnerConfig",
    "RunnerInterrupted",
    "cache_key",
    "count_events",
    "execute_cells",
    "framework_fingerprint",
    "network_fingerprint",
    "program_fingerprint",
    "read_journal",
]
