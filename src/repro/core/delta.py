"""Delta formulation: P#1 restricted to a churn event's blast radius.

A churn event rarely invalidates more than a handful of placements, yet
the cold replanning path rebuilds the full P#1 model — every MAT, every
candidate switch, every ``z`` product — and solves it from scratch.
:class:`DeltaFormulation` is the warm path's solver layer: every MAT
outside the blast radius is *fixed* to its old host and falls out of
the decision space entirely, leaving placement variables only for the
free (orphaned) MATs over a small candidate set.  The fixed placements
still price the objective — their pairwise metadata bytes become
constant baselines, and fixed–free edges contribute *linear* terms
instead of ``z`` products — so the restricted model minimizes the very
same ``A_max`` the full model would, just over a far smaller cube.

Sizing: with ``f`` free MATs and ``c`` candidates the model has
``f*c`` placement binaries plus ``z`` products only for free–free
metadata edges (``O(f^2 c^2)`` worst case, but blast radii are small);
the full model pays ``n*c`` binaries and ``O(m c^2)`` products for all
``m`` metadata edges.  Consecutive delta solves over the same blast
radius shape reuse presolve output through a shared
:class:`~repro.milp.presolve.PresolveCache`, and the old assignment is
offered as the solver's first incumbent whenever it is still
expressible.

The solved assignment is *not* decoded into a plan here: the plan
layer splices it into the surviving placements
(:func:`repro.plan.splice.splice_plan`), using
:attr:`DeltaFormulation.last_predicted_amax` as the exact probe cap —
the spliced plan's ``A_max`` must equal the model's objective, because
stage layout never changes pair bytes.  A mismatch means the delta
abstraction leaked and the caller escalates to a full replan.

Latency/occupancy epsilon constraints are deliberately out of scope:
the delta path serves the reconciler, which runs the overhead-primary
configuration with loose bounds (the paper's evaluation setting).  A
workload change, or a blast radius beyond the caller's threshold,
escalates to the full :class:`~repro.core.formulation.MilpFormulation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.milp.expr import LinExpr
from repro.milp.model import Model, Var
from repro.milp.branch_bound import (
    DEFAULT_PROFILE,
    SOLVER_PROFILES,
    BranchBoundSolver,
)
from repro.milp.presolve import PresolveCache
from repro.milp.solution import Solution
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.tdg.graph import Tdg


def select_delta_candidates(
    tdg: Tdg,
    network: Network,
    paths: PathEnumerator,
    old_plan: DeploymentPlan,
    free: Sequence[str],
    max_candidates: Optional[int] = 8,
) -> List[str]:
    """Candidate hosts for the free MATs of a delta solve.

    Ranked for locality to the surviving deployment: switches already
    hosting a fixed placement first (splicing next to the survivors
    keeps metadata edges intra-switch), then the free MATs' old hosts
    when still hostable, then the remaining programmable switches by
    summed shortest-path latency to the fixed hosts.  The set is grown
    until its residual pipeline capacity (total minus the fixed load)
    covers the free demand, then capped by ``max_candidates`` — but
    never below capacity feasibility.
    """
    hostable = set(network.programmable_names())
    if not hostable:
        raise DeploymentError("delta: network has no programmable switches")
    free_set = set(free)
    fixed_hosts = sorted(
        {
            p.switch
            for name, p in old_plan.placements.items()
            if name not in free_set and p.switch in hostable
        }
    )
    old_hosts = sorted(
        {
            old_plan.placements[name].switch
            for name in free_set
            if name in old_plan.placements
            and old_plan.placements[name].switch in hostable
        }
    )

    def remoteness(u: str) -> float:
        if not fixed_hosts:
            return 0.0
        total = 0.0
        for v in fixed_hosts:
            if v == u:
                continue
            path = paths.shortest(u, v)
            total += path.latency_us if path else math.inf
        return total

    ranked: List[str] = list(fixed_hosts)
    seen = set(ranked)
    for u in old_hosts:
        if u not in seen:
            ranked.append(u)
            seen.add(u)
    for u in sorted(hostable - seen, key=lambda v: (remoteness(v), v)):
        ranked.append(u)

    fixed_load: Dict[str, float] = {}
    for name, p in old_plan.placements.items():
        if name not in free_set:
            fixed_load[p.switch] = (
                fixed_load.get(p.switch, 0.0)
                + tdg.node(name).resource_demand
            )
    demand = sum(tdg.node(name).resource_demand for name in free_set)

    limit = len(ranked)
    if max_candidates is not None:
        limit = min(limit, max_candidates)
    chosen: List[str] = []
    residual = 0.0
    for u in ranked:
        chosen.append(u)
        residual += network.switch(u).total_capacity - fixed_load.get(u, 0.0)
        if len(chosen) >= limit and residual >= demand:
            break
    if residual < demand:
        raise DeploymentError(
            f"delta: candidates leave {residual:.1f} residual stage units "
            f"but the blast radius needs {demand:.1f}"
        )
    return chosen


@dataclass
class _DeltaHandles:
    """Variables and constants the decoder / warm-start encoder need."""

    model: Model
    placement: Dict[Tuple[str, str], Var]  # (free mat, candidate) -> L
    a_max: Var
    candidates: List[str]
    free: List[str]
    fixed_hosts: Dict[str, str]  # fixed mat -> its (unchanged) host
    baselines: Dict[Tuple[str, str], float] = field(default_factory=dict)
    products: Dict[Tuple[str, str, str, str], Var] = field(
        default_factory=dict
    )


class DeltaFormulation:
    """P#1 over the blast radius only, everything else fixed.

    Args:
        max_candidates: Cap on candidate switches for the free MATs
            (grown past the cap only when residual capacity demands).
        time_limit_s: Branch & bound wall-clock budget — deliberately
            short; an expired delta solve escalates, it never blocks
            the reconciler the way a cold solve can.
        node_limit: Branch & bound node budget, same rationale.
        solver_profile: Search profile (``"fast"`` / ``"classic"``).
            The fast profile is the point: its presolve output is
            reused across structurally identical delta models through
            the instance's shared :class:`PresolveCache`.
    """

    def __init__(
        self,
        max_candidates: Optional[int] = 8,
        time_limit_s: float = 5.0,
        node_limit: int = 50_000,
        solver_profile: str = DEFAULT_PROFILE,
    ) -> None:
        if solver_profile not in SOLVER_PROFILES:
            raise ValueError(
                f"solver_profile must be one of {SOLVER_PROFILES}, "
                f"got {solver_profile!r}"
            )
        self.max_candidates = max_candidates
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.solver_profile = solver_profile
        #: Shared across solves: consecutive replans of structurally
        #: identical delta models skip presolve entirely.
        self.presolve_cache = PresolveCache()
        #: Solver outcome of the most recent :meth:`solve`.
        self.last_solution: Optional[Solution] = None
        #: The model's predicted ``A_max`` (bytes) for the most recent
        #: :meth:`solve`; :func:`repro.plan.splice.splice_plan` uses it
        #: as the exact probe cap.
        self.last_predicted_amax: Optional[int] = None

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def build(
        self,
        tdg: Tdg,
        network: Network,
        paths: PathEnumerator,
        old_plan: DeploymentPlan,
        free: Sequence[str],
        candidates: Optional[Sequence[str]] = None,
    ) -> _DeltaHandles:
        free_list = sorted(set(free))
        unknown = [a for a in free_list if a not in tdg]
        if unknown:
            raise DeploymentError(f"delta: free MATs {unknown} not in TDG")
        cand = list(
            candidates
            if candidates is not None
            else select_delta_candidates(
                tdg, network, paths, old_plan, free_list, self.max_candidates
            )
        )
        free_set = set(free_list)
        fixed_hosts = {
            name: p.switch
            for name, p in old_plan.placements.items()
            if name not in free_set
        }

        model = Model("P1-delta")
        placement: Dict[Tuple[str, str], Var] = {}
        for a in free_list:
            for u in cand:
                placement[(a, u)] = model.add_binary(f"L[{a},{u}]")
            model.add_constr(
                LinExpr.total(placement[(a, u)] for u in cand) == 1,
                name=f"place[{a}]",
            )

        # Residual capacity: total minus the load the fixed placements
        # already consume on each candidate.
        for u in cand:
            fixed_load = sum(
                tdg.node(name).resource_demand
                for name, host in fixed_hosts.items()
                if host == u
            )
            load = LinExpr.total(
                placement[(a, u)] * tdg.node(a).resource_demand
                for a in free_list
            )
            model.add_constr(
                load <= network.switch(u).total_capacity - fixed_load,
                name=f"cap[{u}]",
            )

        # Pair terms over (fixed hosts | candidates)^2.  Fixed–fixed
        # edges are constants; fixed–free edges are linear in L;
        # only free–free edges need z products.
        pair_switches = sorted(set(fixed_hosts.values()) | set(cand))
        baselines: Dict[Tuple[str, str], float] = {}
        pair_terms: Dict[Tuple[str, str], List[LinExpr]] = {}
        z_cache: Dict[Tuple[str, str, str, str], Var] = {}

        def product(a: str, b: str, u: str, v: str) -> Var:
            key = (a, b, u, v)
            var = z_cache.get(key)
            if var is None:
                var = model.add_binary(f"z[{a},{b},{u},{v}]")
                model.add_constr(
                    var >= placement[(a, u)] + placement[(b, v)] - 1
                )
                z_cache[key] = var
            return var

        for edge in tdg.edges:
            if edge.metadata_bytes <= 0:
                continue
            a, b = edge.upstream, edge.downstream
            bytes_ = float(edge.metadata_bytes)
            a_free, b_free = a in free_set, b in free_set
            if not a_free and not b_free:
                u, v = fixed_hosts[a], fixed_hosts[b]
                if u != v:
                    baselines[(u, v)] = baselines.get((u, v), 0.0) + bytes_
            elif a_free and b_free:
                for u in cand:
                    for v in cand:
                        if u == v:
                            continue
                        pair_terms.setdefault((u, v), []).append(
                            LinExpr.from_term(product(a, b, u, v), bytes_)
                        )
            elif a_free:
                v = fixed_hosts[b]
                for u in cand:
                    if u == v:
                        continue
                    pair_terms.setdefault((u, v), []).append(
                        LinExpr.from_term(placement[(a, u)], bytes_)
                    )
            else:
                u = fixed_hosts[a]
                for v in cand:
                    if u == v:
                        continue
                    pair_terms.setdefault((u, v), []).append(
                        LinExpr.from_term(placement[(b, v)], bytes_)
                    )

        a_max = model.add_var("A_max", lb=0.0)
        for u in pair_switches:
            for v in pair_switches:
                if u == v:
                    continue
                terms = pair_terms.get((u, v), [])
                base = baselines.get((u, v), 0.0)
                if not terms and base == 0.0:
                    continue
                model.add_constr(
                    a_max >= LinExpr.total(terms) + base,
                    name=f"amax[{(u, v)}]",
                )
        model.minimize(a_max)

        return _DeltaHandles(
            model=model,
            placement=placement,
            a_max=a_max,
            candidates=cand,
            free=free_list,
            fixed_hosts=fixed_hosts,
            baselines=baselines,
            products=z_cache,
        )

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def encode_assignment(
        self,
        handles: _DeltaHandles,
        tdg: Tdg,
        assignment: Dict[str, str],
    ) -> Optional[Dict[Var, float]]:
        """Encode ``free MAT -> switch`` as the solver's first incumbent.

        Returns None when some free MAT's target is outside the
        candidate set (the old host vanished — nothing to warm from).
        """
        cand = set(handles.candidates)
        if any(a not in assignment for a in handles.free) or any(
            assignment[a] not in cand for a in handles.free
        ):
            return None
        hosts = dict(handles.fixed_hosts)
        hosts.update(assignment)
        values: Dict[Var, float] = {}
        for (a, u), var in handles.placement.items():
            values[var] = 1.0 if hosts[a] == u else 0.0
        for (a, b, u, v), var in handles.products.items():
            values[var] = 1.0 if hosts[a] == u and hosts[b] == v else 0.0
        totals: Dict[Tuple[str, str], float] = {}
        for edge in tdg.edges:
            if edge.metadata_bytes <= 0:
                continue
            u, v = hosts[edge.upstream], hosts[edge.downstream]
            if u != v:
                totals[(u, v)] = totals.get((u, v), 0.0) + float(
                    edge.metadata_bytes
                )
        values[handles.a_max] = max(totals.values(), default=0.0)
        return values

    # ------------------------------------------------------------------
    # Solve + decode
    # ------------------------------------------------------------------
    def solve(
        self,
        tdg: Tdg,
        network: Network,
        old_plan: DeploymentPlan,
        free: Sequence[str],
        paths: Optional[PathEnumerator] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> Dict[str, str]:
        """Re-home the free MATs, minimizing the same ``A_max`` as P#1.

        Returns the ``free MAT -> switch`` assignment for
        :func:`repro.plan.splice.splice_plan`; the predicted objective
        lands in :attr:`last_predicted_amax` as the splice's probe cap.

        Raises:
            DeploymentError: Infeasible or expired solve — the caller
                escalates to a full replan.
        """
        paths = paths or PathEnumerator(network)
        if not free:
            self.last_solution = None
            self.last_predicted_amax = old_plan.max_metadata_bytes()
            return {}
        handles = self.build(tdg, network, paths, old_plan, free, candidates)
        old_assignment = {
            a: old_plan.placements[a].switch
            for a in handles.free
            if a in old_plan.placements
        }
        initial = self.encode_assignment(handles, tdg, old_assignment)
        solution = BranchBoundSolver(
            time_limit_s=self.time_limit_s,
            node_limit=self.node_limit,
            profile=self.solver_profile,
            presolve_cache=self.presolve_cache,
        ).solve(handles.model, initial=initial)
        self.last_solution = solution
        if not solution.status.has_solution:
            raise DeploymentError(
                f"delta solve failed: {solution.status.value}"
            )
        assignment: Dict[str, str] = {}
        for a in handles.free:
            for u in handles.candidates:
                if solution.rounded(handles.placement[(a, u)]) == 1:
                    assignment[a] = u
                    break
            else:
                raise DeploymentError(
                    f"delta solution places free MAT {a!r} nowhere"
                )
        self.last_predicted_amax = int(
            round(solution.value(handles.a_max))
        )
        return assignment
