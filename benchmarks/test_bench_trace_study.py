"""Benchmark: the trace-weighted overhead study (extension)."""

from conftest import fast_frameworks, record_report

from repro.experiments.trace_study import main, run


def test_bench_trace_study(benchmark):
    rows = benchmark.pedantic(
        run,
        kwargs=dict(
            topology_id=5,
            num_programs=20,
            frameworks=fast_frameworks(),
        ),
        rounds=1,
        iterations=1,
    )
    record_report(main(rows))

    by_name = {row.framework: row for row in rows}
    hermes = by_name["Hermes"]
    ffl = by_name["FFL"]
    assert hermes.overhead_bytes <= ffl.overhead_bytes
    assert (
        hermes.metrics.mean_slowdown <= ffl.metrics.mean_slowdown
    )
    assert (
        hermes.metrics.total_wire_bytes <= ffl.metrics.total_wire_bytes
    )
