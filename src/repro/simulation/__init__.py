"""End-to-end transmission simulation.

The paper's motivation (§II-B, Fig. 2) and end-to-end experiments
(Exp#1/#4/#5) measure how the per-packet byte overhead degrades flow
completion time (FCT) and goodput: metadata steals payload bytes from
the MTU, so applications need more packets — and more wire bytes — per
message.

This package provides both:

* a discrete-event, store-and-forward flow simulator
  (:class:`FlowSimulator`) that transmits every packet hop by hop; and
* a closed-form model (:func:`analytic_fct`) of the same pipeline,
  cross-checked against the simulator in the test suite and used by
  the large parameter sweeps.
"""

from repro.simulation.events import EventQueue, Simulator
from repro.simulation.packet import Packet
from repro.simulation.flow import Flow, packetize
from repro.simulation.netsim import (
    FlowSimulator,
    HopSpec,
    analytic_fct,
    uniform_path,
)
from repro.simulation.metrics import FlowMetrics, normalized_against
from repro.simulation.traces import (
    TraceConfig,
    TraceFlow,
    TraceMetrics,
    evaluate_trace,
    generate_trace,
)
from repro.simulation.interpreter import (
    ExecutionTrace,
    MissingMetadataError,
    PlanInterpreter,
)

__all__ = [
    "EventQueue",
    "ExecutionTrace",
    "Flow",
    "FlowMetrics",
    "FlowSimulator",
    "HopSpec",
    "MissingMetadataError",
    "Packet",
    "PlanInterpreter",
    "Simulator",
    "TraceConfig",
    "TraceFlow",
    "TraceMetrics",
    "analytic_fct",
    "evaluate_trace",
    "generate_trace",
    "normalized_against",
    "packetize",
    "uniform_path",
]
