"""Local-search refinement of deployment plans.

Both portfolio constructions (min-cut split and first-fit chain) are
one-shot: once segments are placed, no decision is revisited.  This
pass polishes a finished plan with first-improvement local search on
the objective that actually matters — the per-pair maximum:

repeat up to ``max_moves`` times:
  1. find the worst switch pair ``(u, v)``;
  2. for each TDG edge crossing it (heaviest first), try moving one
     endpoint to the other side;
  3. rebuild the two affected switches' stage layouts; keep the move
     iff the plan stays valid and ``A_max`` strictly drops.

Every accepted move lowers ``A_max`` by at least one byte, so the
search terminates; each trial costs two stage layouts plus one pair
scan.

``A_max`` depends only on the MAT -> switch host map — never on stage
layouts or routing — so candidate moves are screened through a
:class:`~repro.plan.builder.PlanBuilder` *probe* first: apply the move
incrementally (O(degree)), read the candidate ``A_max``, undo.  Only
moves the probe proves improving pay for the full rebuild (stage
layouts, routing, validation, dataflow verification).  The filter is
exact — a probe-rejected candidate is precisely one the legacy search
would have rejected after rebuilding — so the accepted-move sequence,
and therefore the refined plan, is identical to the historical
implementation; only the wall-clock drops (see
``benchmarks/test_bench_plan.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.stages import StageAssignmentError, assign_stages
from repro.network.paths import PathEnumerator
from repro.plan.builder import PlanBuilder


def _rebuild(
    plan: DeploymentPlan,
    hosts: Dict[str, str],
    paths: PathEnumerator,
) -> Optional[DeploymentPlan]:
    """A full plan from a MAT->switch mapping, or None if infeasible."""
    builder = PlanBuilder(plan.tdg, plan.network)
    by_switch: Dict[str, List[str]] = {}
    for mat_name, switch in hosts.items():
        by_switch.setdefault(switch, []).append(mat_name)
    try:
        for switch, names in by_switch.items():
            segment = plan.tdg.subgraph(names, name=f"ref_{switch}")
            layout = assign_stages(segment, plan.network.switch(switch))
            for placement in layout.values():
                builder.place(
                    placement.mat_name, placement.switch, placement.stages
                )
    except StageAssignmentError:
        return None
    try:
        builder.route_shortest(paths)
        candidate = builder.build()
    except DeploymentError:
        return None
    # Structural validity is not enough: a move can strand metadata
    # behind a recirculation (produced on a switch's first visit,
    # needed on its second — the PHV does not survive the loop).  Only
    # accept candidates the dataflow verifier can actually execute.
    from repro.core.verification import DataflowError, verify_dataflow

    try:
        verify_dataflow(candidate)
    except DataflowError:
        return None
    return candidate


def refine_plan(
    plan: DeploymentPlan,
    paths: Optional[PathEnumerator] = None,
    max_moves: int = 40,
    max_trials_per_move: int = 24,
) -> DeploymentPlan:
    """Polish ``plan`` with boundary-move local search.

    Args:
        plan: A validated plan; never mutated.
        paths: Shared path cache.
        max_moves: Accepted-move budget.
        max_trials_per_move: Candidate relocations examined per round.

    Returns:
        A plan with ``A_max`` less than or equal to the input's.
    """
    paths = paths or PathEnumerator(plan.network)
    current = plan
    # Incremental A_max probe mirroring the current host map.  Stage
    # layouts in the probe go stale across accepted moves, which is
    # fine: the byte metrics never read them.
    probe = PlanBuilder.from_plan(plan)
    for _round in range(max_moves):
        pairs = current.pair_metadata_bytes()
        if not pairs:
            break
        best_amax = max(pairs.values())
        (u, v), _bytes = max(pairs.items(), key=lambda kv: kv[1])
        crossing = sorted(
            (
                e
                for e in current.tdg.edges
                if current.switch_of(e.upstream) == u
                and current.switch_of(e.downstream) == v
            ),
            key=lambda e: e.metadata_bytes,
            reverse=True,
        )
        hosts = {
            name: placement.switch
            for name, placement in current.placements.items()
        }
        improved = False
        trials = 0
        for edge in crossing:
            if trials >= max_trials_per_move or improved:
                break
            for mat_name, target in (
                (edge.upstream, v),
                (edge.downstream, u),
            ):
                trials += 1
                token = probe.move(mat_name, target)
                candidate_amax = probe.max_metadata_bytes()
                probe.undo(token)
                if candidate_amax >= best_amax:
                    continue
                trial_hosts = dict(hosts)
                trial_hosts[mat_name] = target
                candidate = _rebuild(current, trial_hosts, paths)
                if (
                    candidate is not None
                    and candidate.max_metadata_bytes() < best_amax
                ):
                    current = candidate
                    probe.move(mat_name, target)
                    improved = True
                    break
        if not improved:
            break
    return current
