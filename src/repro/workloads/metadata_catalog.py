"""Table I: common metadata in data plane programs.

| Metadata          | Size | Common usage                         |
|-------------------|------|--------------------------------------|
| Switch identifier | 4 B  | path tracing, path conformance       |
| Queue lengths     | 6 B  | congestion control                   |
| Timestamps        | 12 B | troubleshooting, anomaly detection   |
| Counter index     | 4 B  | hash tables, sketches                |

The constructors return fresh :class:`~repro.dataplane.fields.Field`
objects namespaced per program, so two programs' "counter index" fields
are distinct unless a workload deliberately shares them.
"""

from __future__ import annotations

from typing import Dict

from repro.dataplane.fields import Field, metadata_field

#: Metadata kind -> size in bytes (Table I).
METADATA_SIZES: Dict[str, int] = {
    "switch_id": 4,
    "queue_lengths": 6,
    "timestamps": 12,
    "counter_index": 4,
}


def switch_identifier(namespace: str) -> Field:
    """A 4-byte switch identifier (path tracing / conformance)."""
    return metadata_field(f"{namespace}.switch_id", 32)


def queue_lengths(namespace: str) -> Field:
    """6 bytes of queue-depth telemetry (congestion control)."""
    return metadata_field(f"{namespace}.queue_lengths", 48)


def timestamps(namespace: str) -> Field:
    """12 bytes of ingress/egress timestamps (troubleshooting)."""
    return metadata_field(f"{namespace}.timestamps", 96)


def counter_index(namespace: str) -> Field:
    """A 4-byte counter/hash index (sketches, hash tables)."""
    return metadata_field(f"{namespace}.counter_index", 32)
