"""Unit tests for the event-folded world state."""

import pytest

from repro.network.generators import random_wan
from repro.runtime import EventKind, NetworkEvent, ScenarioError, WorldState
from tests.conftest import make_sketch_program


@pytest.fixture
def network():
    return random_wan(10, 14, seed=2)


@pytest.fixture
def world(network):
    return WorldState(network, [make_sketch_program("p0")])


def ev(kind, target="", value=None, t=1.0):
    return NetworkEvent(t, kind, target, value)


class TestApply:
    def test_fail_removes_switch_and_links(self, world, network):
        victim = network.switch_names[0]
        world.apply(ev(EventKind.SWITCH_FAIL, victim))
        current = world.current_network()
        assert victim not in current
        assert all(
            victim not in (l.u, l.v) for l in current.links
        )
        assert current.num_switches == network.num_switches - 1

    def test_recover_restores_base(self, world, network):
        victim = network.switch_names[0]
        world.apply(ev(EventKind.SWITCH_FAIL, victim))
        world.apply(ev(EventKind.SWITCH_RECOVER, victim, t=2.0))
        current = world.current_network()
        assert current.num_switches == network.num_switches
        assert current.num_links == network.num_links
        assert world.is_quiescent()

    def test_recovered_network_keeps_base_name(self, world, network):
        """Plan fingerprints embed the network name, so a recovered
        world must produce a name-identical network."""
        victim = network.switch_names[0]
        world.apply(ev(EventKind.SWITCH_FAIL, victim))
        assert world.current_network().name == network.name
        world.apply(ev(EventKind.SWITCH_RECOVER, victim, t=2.0))
        assert world.current_network().name == network.name

    def test_drain_keeps_forwarding_but_not_hosting(self, world, network):
        victim = next(
            s.name for s in network.programmable_switches()
        )
        world.apply(ev(EventKind.SWITCH_DRAIN, victim))
        current = world.current_network()
        assert victim in current  # still forwards
        assert victim not in current.programmable_names()

    def test_link_latency_override(self, world, network):
        link = network.links[0]
        world.apply(
            ev(EventKind.LINK_LATENCY, f"{link.u}|{link.v}", 42.5)
        )
        assert world.current_network().link(
            link.u, link.v
        ).latency_ms == 42.5

    def test_link_latency_rejects_negative(self, world, network):
        link = network.links[0]
        with pytest.raises(ScenarioError, match=">= 0"):
            world.apply(
                ev(EventKind.LINK_LATENCY, f"{link.u}|{link.v}", -1.0)
            )

    def test_set_programmable_toggle(self, world, network):
        non_prog = next(
            s.name
            for s in network.switches
            if not s.programmable
        )
        world.apply(ev(EventKind.SET_PROGRAMMABLE, non_prog, 1.0))
        assert non_prog in world.current_network().programmable_names()

    def test_workload_add_remove(self, world):
        world.apply(ev(EventKind.WORKLOAD_ADD, "churn0", 3.0))
        assert "churn0" in [p.name for p in world.current_programs()]
        world.apply(ev(EventKind.WORKLOAD_REMOVE, "churn0", t=2.0))
        assert "churn0" not in [
            p.name for p in world.current_programs()
        ]

    def test_workload_add_duplicate_rejected(self, world):
        with pytest.raises(ScenarioError, match="already"):
            world.apply(ev(EventKind.WORKLOAD_ADD, "p0", 1.0))

    def test_workload_remove_unknown_rejected(self, world):
        with pytest.raises(ScenarioError, match="no program"):
            world.apply(ev(EventKind.WORKLOAD_REMOVE, "ghost"))

    def test_unknown_switch_rejected(self, world):
        with pytest.raises(ScenarioError, match="unknown switch"):
            world.apply(ev(EventKind.SWITCH_FAIL, "ghost"))


class TestDerived:
    def test_vanished_hosts(self, world, network):
        prog = [s.name for s in network.programmable_switches()]
        world.apply(ev(EventKind.SWITCH_FAIL, prog[0]))
        world.apply(ev(EventKind.SWITCH_DRAIN, prog[1], t=2.0))
        vanished = world.vanished_hosts(prog[:3])
        assert vanished == {prog[0], prog[1]}

    def test_base_network_never_mutated(self, world, network):
        before = (network.num_switches, network.num_links)
        world.apply(ev(EventKind.SWITCH_FAIL, network.switch_names[0]))
        world.current_network()
        assert (network.num_switches, network.num_links) == before
