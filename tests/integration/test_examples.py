"""Smoke tests: every bundled example must run and print sensibly."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "per-packet byte overhead" in out
    assert "switch config" in out


def test_sdm_deployment(capsys):
    out = run_example("sdm_deployment", capsys)
    assert "Hermes:" in out
    assert "merging saved" in out


def test_int_telemetry(capsys):
    out = run_example("int_telemetry", capsys)
    assert "A_max" in out
    assert "RPC" in out


def test_nfv_chain(capsys):
    out = run_example("nfv_chain", capsys)
    assert "Hermes split the chain" in out
    assert "piggyback headers" in out


def test_operations_day2(capsys):
    out = run_example("operations_day2", capsys)
    assert "counter=3" in out
    assert "failed" in out
    assert "disruption" in out


def test_pint_bounded_telemetry(capsys):
    out = run_example("pint_bounded_telemetry", capsys)
    assert "PINT budget" in out
    assert "collector complete" in out
