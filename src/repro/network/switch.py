"""Switch model.

A switch is described by the four properties of §V-A:

* ``programmable`` — ``P(u)``: whether MATs can be placed on it;
* ``num_stages`` — ``C_stage``: pipeline stages (Tofino-like default);
* ``stage_capacity`` — ``C_res``: per-stage resource capacity, expressed
  in normalized stage fractions (a stage holds 1.0 units by default, and
  MAT demands from :mod:`repro.dataplane.mat` are fractions of a stage);
* ``latency_us`` — ``t_s(u)``: maximum transmission latency.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tofino-like defaults used throughout the experiments.
DEFAULT_NUM_STAGES = 12
DEFAULT_STAGE_CAPACITY = 1.0
DEFAULT_SWITCH_LATENCY_US = 1.0


@dataclass(frozen=True)
class Switch:
    """One network switch.

    Attributes:
        name: Unique switch name within its network.
        programmable: ``P(u)`` — True for programmable switches.
        num_stages: ``C_stage``; ignored for non-programmable switches.
        stage_capacity: ``C_res`` in normalized stage units.
        latency_us: ``t_s(u)`` in microseconds.
        ports: Number of front-panel ports (informational; used by the
            backend when emitting configurations).
        port_speed_gbps: Per-port line rate.
    """

    name: str
    programmable: bool = True
    num_stages: int = DEFAULT_NUM_STAGES
    stage_capacity: float = DEFAULT_STAGE_CAPACITY
    latency_us: float = DEFAULT_SWITCH_LATENCY_US
    ports: int = 32
    port_speed_gbps: float = 100.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("switch name must be non-empty")
        if self.num_stages <= 0:
            raise ValueError(f"switch {self.name!r}: num_stages must be positive")
        if self.stage_capacity <= 0:
            raise ValueError(
                f"switch {self.name!r}: stage_capacity must be positive"
            )
        if self.latency_us < 0:
            raise ValueError(f"switch {self.name!r}: latency must be >= 0")

    @property
    def total_capacity(self) -> float:
        """``C_stage * C_res`` — the whole-pipeline resource budget."""
        if not self.programmable:
            return 0.0
        return self.num_stages * self.stage_capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "P4" if self.programmable else "fixed"
        return f"Switch({self.name!r}, {kind}, {self.num_stages} stages)"
