"""The simulation specification: what traffic runs over which hops.

Every end-to-end number in the repo — Fig. 2's ratios, the harness's
``fct_ratio``/``goodput_ratio`` columns, the trace study's slowdowns,
the runtime layer's disruption traffic impact — reduces to the same
question: given per-packet byte overheads and hop chains, what happens
to FCT and goodput?  Historically each call site hand-built a uniform
path and a pair of :class:`~repro.simulation.flow.Flow` objects;
:class:`SimulationSpec` replaces those divergent copies with one
declarative artifact that any engine (:mod:`repro.simulation.engine`)
can evaluate.

A spec is a set of *paths* (hop chains), a set of *flows* (message
sizes bound to a path and a per-packet overhead), and the shared
traffic-model constants.  Constructors cover the repo's producers:

* :meth:`SimulationSpec.uniform` — the classic scalar-overhead,
  uniform-path model of ``end_to_end_impact``;
* :meth:`SimulationSpec.uniform_sweep` — Fig. 2's overhead sweep with
  one shared baseline;
* :meth:`SimulationSpec.from_trace` — a generated flow trace over one
  path (the trace study);
* :meth:`SimulationSpec.from_plan` — the plan-aware model: per-pair
  hop chains straight from a :class:`~repro.plan.DeploymentPlan`'s
  routing over the real :class:`~repro.network.topology.Network`, with
  per-pair overhead bytes from the plan's coordination edges.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.simulation.flow import DEFAULT_MTU, Flow, flow_pair
from repro.simulation.netsim import HopSpec, uniform_path
from repro.simulation.packet import BASE_HEADER_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.topology import Network
    from repro.plan.artifact import DeploymentPlan
    from repro.simulation.traces import TraceFlow

#: Message size used by the end-to-end impact model: 1 MB transfers,
#: large enough that pacing (not propagation) dominates.
E2E_MESSAGE_BYTES = 1_000_000
#: The paper's DCN path length (§II-B: "a flow typically traverses
#: five switches").
E2E_HOPS = 5


@dataclass(frozen=True)
class DiurnalLoad:
    """Seeded diurnal/periodic offered-load modulation.

    ``load_at(hour)`` follows a sinusoid around ``base`` — peak at
    ``phase_hours`` + a quarter period, trough half a period later —
    optionally perturbed by seeded multiplicative jitter.  The same
    ``(seed, hour)`` always yields the same load, so suites sweeping
    time-of-day traffic stay deterministic and cacheable.

    Attributes:
        base: Mean offered load (bottleneck utilization).
        amplitude: Relative swing in ``[0, 1]``; 0 = flat.
        period_hours: Cycle length (24 = diurnal).
        phase_hours: Hour at which the sinusoid crosses ``base``
            rising; shift to move the daily peak.
        jitter: Relative magnitude of seeded per-hour noise in
            ``[0, 1)``; 0 = none.
        seed: Jitter seed; each ``(seed, hour)`` draws independently.
        floor: Lower clamp, keeping the load positive (the traffic
            model rejects non-positive offered loads).
    """

    base: float = 0.5
    amplitude: float = 0.0
    period_hours: float = 24.0
    phase_hours: float = 0.0
    jitter: float = 0.0
    seed: int = 0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base load must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period_hours <= 0:
            raise ValueError("period_hours must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.floor <= 0:
            raise ValueError("floor must be positive")

    def load_at(self, hour: float) -> float:
        """Offered load at ``hour`` (hours since the cycle origin)."""
        angle = 2.0 * math.pi * (hour - self.phase_hours) / self.period_hours
        load = self.base * (1.0 + self.amplitude * math.sin(angle))
        if self.jitter:
            # One independent, reproducible draw per (seed, hour).
            u = random.Random(f"{self.seed}:{hour!r}").random()
            load *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return max(load, self.floor)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base,
            "amplitude": self.amplitude,
            "period_hours": self.period_hours,
            "phase_hours": self.phase_hours,
            "jitter": self.jitter,
            "seed": self.seed,
            "floor": self.floor,
        }

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "DiurnalLoad":
        unknown = set(doc) - {
            "base", "amplitude", "period_hours", "phase_hours",
            "jitter", "seed", "floor",
        }
        if unknown:
            raise ValueError(
                f"unknown DiurnalLoad keys: {sorted(unknown)}"
            )
        return DiurnalLoad(**doc)


@dataclass(frozen=True)
class TrafficModel:
    """The shared knobs of every flow in a spec.

    ``offered_load`` is the bottleneck utilization the contention
    engine should drive each path's output queue at; ``None`` defers
    to the engine's own knob (the CLI's ``--load``) and then to
    :data:`repro.simulation.contention.DEFAULT_LOAD`.  Values above
    1.0 model overload.  The independent-flow engines ignore it.

    ``load_model`` (optional) is a :class:`DiurnalLoad`; engines keep
    reading the scalar ``offered_load``, so time-varying suites call
    :meth:`at_hour` to materialize the scalar for a given hour.
    """

    packet_payload_bytes: int = 1024
    message_bytes: int = E2E_MESSAGE_BYTES
    header_bytes: int = BASE_HEADER_BYTES
    mtu: int = DEFAULT_MTU
    offered_load: Optional[float] = None
    load_model: Optional[DiurnalLoad] = None

    def __post_init__(self) -> None:
        if self.packet_payload_bytes <= 0:
            raise ValueError("packet_payload_bytes must be positive")
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        if self.offered_load is not None and self.offered_load <= 0:
            raise ValueError("offered_load must be positive when set")

    def at_hour(self, hour: float) -> "TrafficModel":
        """This model with ``offered_load`` fixed to ``hour``'s value.

        Requires a ``load_model``; the result carries the materialized
        scalar (and drops the model), so any engine can evaluate it.
        """
        if self.load_model is None:
            raise ValueError("at_hour() needs a load_model")
        return replace(
            self,
            offered_load=self.load_model.load_at(hour),
            load_model=None,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "packet_payload_bytes": self.packet_payload_bytes,
            "message_bytes": self.message_bytes,
            "header_bytes": self.header_bytes,
            "mtu": self.mtu,
            "offered_load": self.offered_load,
        }
        if self.load_model is not None:
            doc["load_model"] = self.load_model.to_dict()
        return doc

    @staticmethod
    def from_dict(doc: Dict[str, Any]) -> "TrafficModel":
        known = {
            "packet_payload_bytes", "message_bytes", "header_bytes",
            "mtu", "offered_load", "load_model",
        }
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown TrafficModel keys: {sorted(unknown)}"
            )
        fields = dict(doc)
        model = fields.pop("load_model", None)
        if model is not None:
            fields["load_model"] = DiurnalLoad.from_dict(model)
        return TrafficModel(**fields)


@dataclass(frozen=True)
class FlowSpec:
    """One flow of the spec: a message bound to a path and an overhead.

    ``path_id`` indexes into :attr:`SimulationSpec.paths`;
    ``pair`` (optional) records which routed source/destination pair
    produced this flow when the spec came from a plan.
    """

    flow_id: int
    message_bytes: int
    overhead_bytes: int
    path_id: int = 0
    pair: Optional[Tuple[str, str]] = None


@dataclass(frozen=True)
class SimulationSpec:
    """Traffic + hop chains, ready for any engine.

    Attributes:
        paths: Hop chains flows traverse; ``FlowSpec.path_id`` indexes
            this tuple.
        flows: The flows to evaluate.  Each is normalized against a
            zero-overhead twin on the same path (engines compute both).
            Spec order within a path is the contention engine's
            arrival order at that path's output queue.
        traffic: Shared packetization constants.
        source: Human-readable provenance ("uniform", "plan:...",
            "trace:..."), carried into ``sim.*`` telemetry.
    """

    paths: Tuple[Tuple[HopSpec, ...], ...]
    flows: Tuple[FlowSpec, ...]
    traffic: TrafficModel = field(default_factory=TrafficModel)
    source: str = "custom"

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError("spec needs at least one path")
        if not self.flows:
            raise ValueError("spec needs at least one flow")
        for flow in self.flows:
            if not 0 <= flow.path_id < len(self.paths):
                raise ValueError(
                    f"flow {flow.flow_id} references unknown path "
                    f"{flow.path_id}"
                )

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    def flow_objects(self, flow: FlowSpec) -> Tuple[Flow, Flow]:
        """(baseline, measured) :class:`Flow` pair for one spec flow."""
        return flow_pair(
            flow.message_bytes,
            self.traffic.packet_payload_bytes,
            flow.overhead_bytes,
            flow_id=flow.flow_id,
            header_bytes=self.traffic.header_bytes,
            mtu=self.traffic.mtu,
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def uniform(
        overhead_bytes: int,
        packet_payload_bytes: int = 1024,
        hops: int = E2E_HOPS,
        message_bytes: int = E2E_MESSAGE_BYTES,
        flows: int = 1,
        offered_load: Optional[float] = None,
    ) -> "SimulationSpec":
        """The classic scalar model: one flow over a uniform path.

        ``flows`` > 1 replicates the message into a population sharing
        the single path — identical per flow for the independent
        engines, but a queue for the contention engine to fill (the
        shape :func:`~repro.simulation.contention
        .congested_overhead_impact` evaluates).
        """
        if flows <= 0:
            raise ValueError("flows must be positive")
        return SimulationSpec(
            paths=(tuple(uniform_path(hops)),),
            flows=tuple(
                FlowSpec(i, message_bytes, overhead_bytes)
                for i in range(flows)
            ),
            traffic=TrafficModel(
                packet_payload_bytes=packet_payload_bytes,
                message_bytes=message_bytes,
                offered_load=offered_load,
            ),
            source="uniform",
        )

    @staticmethod
    def uniform_sweep(
        overheads: Sequence[int],
        packet_payload_bytes: int = 1024,
        hops: int = E2E_HOPS,
        message_bytes: int = E2E_MESSAGE_BYTES,
    ) -> "SimulationSpec":
        """Fig. 2's shape: one flow per overhead, all on one path."""
        if not overheads:
            raise ValueError("sweep needs at least one overhead")
        return SimulationSpec(
            paths=(tuple(uniform_path(hops)),),
            flows=tuple(
                FlowSpec(i, message_bytes, overhead)
                for i, overhead in enumerate(overheads)
            ),
            traffic=TrafficModel(
                packet_payload_bytes=packet_payload_bytes,
                message_bytes=message_bytes,
            ),
            source="uniform-sweep",
        )

    @staticmethod
    def from_trace(
        trace: Sequence["TraceFlow"],
        path: Sequence[HopSpec],
        overhead_bytes: int,
        packet_payload_bytes: int = 1024,
    ) -> "SimulationSpec":
        """A generated flow trace over one hop chain."""
        if not trace:
            raise ValueError("empty trace")
        return SimulationSpec(
            paths=(tuple(path),),
            flows=tuple(
                FlowSpec(flow.flow_id, flow.message_bytes, overhead_bytes)
                for flow in trace
            ),
            traffic=TrafficModel(
                packet_payload_bytes=packet_payload_bytes
            ),
            source=f"trace:{len(trace)}",
        )

    @staticmethod
    def from_plan(
        plan: "DeploymentPlan",
        network: "Network",
        traffic: Optional[TrafficModel] = None,
        trace: Optional[Sequence["TraceFlow"]] = None,
    ) -> "SimulationSpec":
        """The plan-aware model: real routes, per-pair overheads.

        For every coordinating pair in
        :meth:`~repro.plan.DeploymentPlan.pair_metadata_bytes`, the
        plan's routed path is translated into a hop chain over the
        actual network links: each hop serializes at the link's
        bandwidth and carries the link's propagation latency plus the
        downstream switch's processing latency (the source switch's
        latency folds into the first hop), so the chain's total latency
        equals the path's ``t_p``.

        Without a ``trace``, one ``message_bytes`` flow runs per pair
        (the worst/mean over pairs generalizes the scalar ``A_max``
        model).  With a ``trace``, its flows are spread round-robin
        across the pairs.  A plan with no coordinating pairs degrades
        to a single zero-overhead flow over the uniform path.

        Raises :class:`~repro.plan.artifact.DeploymentError` (via the
        plan's routing accessors) if a coordinating pair has no routed
        path.
        """
        from repro.plan.artifact import DeploymentError

        traffic = traffic or TrafficModel()
        pair_bytes = plan.pair_metadata_bytes()
        if not pair_bytes:
            if trace is not None:
                if not trace:
                    raise ValueError("empty trace")
                idle_flows = tuple(
                    FlowSpec(f.flow_id, f.message_bytes, 0)
                    for f in trace
                )
            else:
                idle_flows = (FlowSpec(0, traffic.message_bytes, 0),)
            return SimulationSpec(
                paths=(tuple(uniform_path(E2E_HOPS)),),
                flows=idle_flows,
                traffic=traffic,
                source="plan:idle",
            )
        routing = plan.routing
        paths: List[Tuple[HopSpec, ...]] = []
        pairs: List[Tuple[Tuple[str, str], int]] = []
        for pair in sorted(pair_bytes):
            path = routing.get(pair)
            if path is None:
                raise DeploymentError(
                    f"pair {pair} coordinates but has no routed path"
                )
            paths.append(hop_chain(network, path.switches))
            pairs.append((pair, pair_bytes[pair]))
        flows: List[FlowSpec]
        if trace is None:
            flows = [
                FlowSpec(i, traffic.message_bytes, overhead, path_id=i,
                         pair=pair)
                for i, (pair, overhead) in enumerate(pairs)
            ]
        else:
            if not trace:
                raise ValueError("empty trace")
            flows = [
                FlowSpec(
                    flow.flow_id,
                    flow.message_bytes,
                    pairs[i % len(pairs)][1],
                    path_id=i % len(pairs),
                    pair=pairs[i % len(pairs)][0],
                )
                for i, flow in enumerate(trace)
            ]
        return SimulationSpec(
            paths=tuple(paths),
            flows=tuple(flows),
            traffic=traffic,
            source=f"plan:{len(pairs)}pairs",
        )


def hop_chain(
    network: "Network", switches: Sequence[str]
) -> Tuple[HopSpec, ...]:
    """A routed switch sequence as a store-and-forward hop chain.

    Hop ``i`` is the link ``switches[i] -> switches[i+1]``: it
    serializes at the link's bandwidth and delays by the link's
    propagation latency plus the downstream switch's processing
    latency.  The source switch's latency is folded into the first
    hop, so ``sum(hop.latency_us) == path_latency_us(network,
    switches)`` exactly.
    """
    if len(switches) < 2:
        # A degenerate single-switch "path" (self-pair): one hop at
        # default rate, delayed only by that switch.
        latency = network.switch(switches[0]).latency_us if switches else 0.0
        return (HopSpec(latency_us=latency),)
    hops: List[HopSpec] = []
    for i, (u, v) in enumerate(zip(switches, switches[1:])):
        link = network.link(u, v)
        latency = link.latency_us + network.switch(v).latency_us
        if i == 0:
            latency += network.switch(u).latency_us
        hops.append(
            HopSpec(rate_gbps=link.bandwidth_gbps, latency_us=latency)
        )
    return tuple(hops)


__all__ = [
    "DiurnalLoad",
    "E2E_HOPS",
    "E2E_MESSAGE_BYTES",
    "FlowSpec",
    "SimulationSpec",
    "TrafficModel",
    "hop_chain",
]
