"""Unit tests for topology generators and the Table III zoo."""

import pytest

from repro.network.generators import fat_tree, linear_topology, random_wan
from repro.network.topozoo import TABLE_III_TOPOLOGIES, topology_zoo_wan


class TestLinear:
    def test_shape(self):
        net = linear_topology(5)
        assert net.num_switches == 5
        assert net.num_links == 4
        assert net.is_connected()
        assert net.degree("s0") == 1
        assert net.degree("s2") == 2

    def test_single_switch(self):
        net = linear_topology(1)
        assert net.num_links == 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            linear_topology(0)

    def test_non_programmable_option(self):
        net = linear_topology(3, programmable=False)
        assert not net.programmable_switches()


class TestFatTree:
    def test_k4_shape(self):
        net = fat_tree(4)
        # 4 cores + 4 pods x (2 agg + 2 edge) = 20
        assert net.num_switches == 20
        assert net.is_connected()

    def test_core_is_fixed_function(self):
        net = fat_tree(4)
        assert not net.switch("core0").programmable
        assert net.switch("pod0_agg0").programmable
        assert net.switch("pod0_edge1").programmable

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fat_tree(3)


class TestRandomWan:
    def test_is_connected_and_sized(self):
        net = random_wan(30, 45, seed=1)
        assert net.num_switches == 30
        assert net.num_links == 45
        assert net.is_connected()

    def test_deterministic_per_seed(self):
        a = random_wan(20, 30, seed=5)
        b = random_wan(20, 30, seed=5)
        assert {l.key for l in a.links} == {l.key for l in b.links}
        assert a.programmable_names() == b.programmable_names()

    def test_different_seeds_differ(self):
        a = random_wan(20, 30, seed=5)
        b = random_wan(20, 30, seed=6)
        assert {l.key for l in a.links} != {l.key for l in b.links}

    def test_programmable_fraction(self):
        net = random_wan(40, 50, seed=2, programmable_fraction=0.5)
        assert len(net.programmable_switches()) == 20

    def test_at_least_one_programmable(self):
        net = random_wan(10, 12, seed=3, programmable_fraction=0.0)
        assert len(net.programmable_switches()) == 1

    def test_link_latencies_in_paper_range(self):
        net = random_wan(20, 30, seed=4)
        for link in net.links:
            assert 1.0 <= link.latency_ms <= 10.0

    def test_edge_count_validation(self):
        with pytest.raises(ValueError):
            random_wan(10, 5, seed=0)  # below spanning tree
        with pytest.raises(ValueError):
            random_wan(4, 7, seed=0)  # above complete graph
        with pytest.raises(ValueError):
            random_wan(0, 0, seed=0)


class TestTopologyZoo:
    def test_table_iii_has_ten_entries(self):
        assert sorted(TABLE_III_TOPOLOGIES) == list(range(1, 11))

    @pytest.mark.parametrize("topology_id", sorted(TABLE_III_TOPOLOGIES))
    def test_matches_table_counts(self, topology_id):
        nodes, edges = TABLE_III_TOPOLOGIES[topology_id]
        net = topology_zoo_wan(topology_id)
        assert net.num_switches == nodes
        assert net.num_links == edges
        assert net.is_connected()

    def test_deterministic(self):
        a = topology_zoo_wan(4)
        b = topology_zoo_wan(4)
        assert {l.key for l in a.links} == {l.key for l in b.links}

    def test_rejects_unknown_id(self):
        with pytest.raises(ValueError):
            topology_zoo_wan(11)

    def test_half_programmable(self):
        net = topology_zoo_wan(1)
        frac = len(net.programmable_switches()) / net.num_switches
        assert 0.4 <= frac <= 0.6
