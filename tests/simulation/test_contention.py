"""Unit tests for the contention engine itself.

The differential suite (``test_engine_differential.py``) proves
agreement with the exact DES; this module covers the engine's own
contract: registry wiring, load resolution and validation,
determinism, the structural contention-free guarantee, conservation
laws, and the 10^6-flow performance budget (slow-marked).
"""

from __future__ import annotations

import time

import pytest

from repro.simulation import (
    CONTENTION_FREE_LOAD,
    DEFAULT_LOAD,
    ContentionEngine,
    SimulationSpec,
    congested_overhead_impact,
    get_engine,
)
from repro.simulation.engine import ENGINES
from repro.simulation.netsim import uniform_path
from repro.simulation.traces import TraceConfig, generate_trace


def _spec(flows=50, seed=7, load=None, overhead=96):
    trace = generate_trace(
        seed, TraceConfig(num_flows=flows, max_bytes=256 * 1024)
    )
    spec = SimulationSpec.from_trace(trace, uniform_path(5), overhead)
    if load is not None:
        from dataclasses import replace

        spec = replace(spec, traffic=replace(spec.traffic, offered_load=load))
    return spec


class TestRegistry:
    def test_contention_is_registered(self):
        engine = get_engine("contention")
        assert isinstance(engine, ContentionEngine)
        assert "contention" in ENGINES

    def test_get_engine_forwards_kwargs(self):
        engine = get_engine("contention", load=0.7, seed=3)
        assert engine.load == 0.7
        assert engine.seed == 3

    def test_engine_instance_passthrough(self):
        engine = ContentionEngine(load=0.4)
        assert get_engine(engine) is engine


class TestLoadResolution:
    @pytest.mark.parametrize("bad", (0.0, -0.5))
    def test_rejects_nonpositive_load(self, bad):
        with pytest.raises(ValueError):
            ContentionEngine(load=bad)

    def test_constructor_load_wins_over_spec(self):
        spec = _spec(load=0.9)
        assert ContentionEngine(load=0.2).resolved_load(spec) == 0.2

    def test_spec_load_wins_over_default(self):
        assert ContentionEngine().resolved_load(_spec(load=0.9)) == 0.9

    def test_default_load_when_nothing_set(self):
        assert ContentionEngine().resolved_load(_spec()) == DEFAULT_LOAD

    def test_result_records_resolved_load(self):
        result = ContentionEngine(load=0.75).evaluate(_spec())
        assert result.load == 0.75


class TestContentionFreeRegime:
    def test_threshold_load_has_zero_waits(self):
        result = ContentionEngine(load=CONTENTION_FREE_LOAD).evaluate(_spec())
        assert result.wait_us == [0.0] * result.num_flows
        assert result.mean_wait_us == 0.0
        assert result.max_wait_us == 0.0
        assert result.contended_fraction == 0.0

    def test_single_flow_never_waits(self):
        result = ContentionEngine(load=5.0).evaluate(_spec(flows=1))
        assert result.wait_us == [0.0]

    def test_high_load_queues(self):
        result = ContentionEngine(load=0.9).evaluate(_spec())
        assert result.max_wait_us > 0.0
        assert 0.0 < result.contended_fraction <= 1.0


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        spec = _spec()
        a = ContentionEngine(load=0.8, seed=4).evaluate(spec)
        b = ContentionEngine(load=0.8, seed=4).evaluate(spec)
        assert a.fct_us == b.fct_us
        assert a.wait_us == b.wait_us

    def test_seed_changes_the_arrival_jitter(self):
        spec = _spec()
        a = ContentionEngine(load=0.8, seed=0).evaluate(spec)
        b = ContentionEngine(load=0.8, seed=1).evaluate(spec)
        assert a.wait_us != b.wait_us
        # Packetization is schedule-independent.
        assert a.num_packets == b.num_packets
        assert a.wire_bytes == b.wire_bytes


class TestConservation:
    def test_wire_and_packet_columns_match_other_engines(self):
        spec = _spec()
        contended = ContentionEngine(load=0.9).evaluate(spec)
        for other in ("analytic", "batch"):
            reference = get_engine(other).evaluate(spec)
            assert contended.wire_bytes == reference.wire_bytes
            assert contended.num_packets == reference.num_packets

    def test_fct_is_base_plus_wait(self):
        spec = _spec()
        calm = ContentionEngine(load=CONTENTION_FREE_LOAD).evaluate(spec)
        busy = ContentionEngine(load=0.9).evaluate(spec)
        for base, fct, wait in zip(calm.fct_us, busy.fct_us, busy.wait_us):
            assert fct == pytest.approx(base + wait, rel=1e-12)


class TestCongestedOverheadImpact:
    def test_overhead_inflates_fct_under_load(self):
        ratio, goodput = congested_overhead_impact(
            192, load=0.9, flows=64, seed=0
        )
        assert ratio > 1.0
        assert goodput < 1.0

    def test_zero_overhead_is_neutral(self):
        ratio, goodput = congested_overhead_impact(0, load=0.9, flows=64)
        assert ratio == pytest.approx(1.0)
        assert goodput == pytest.approx(1.0)


@pytest.mark.slow
class TestPerformanceBudget:
    def test_million_flows_under_60s(self):
        trace = generate_trace(
            0, TraceConfig(num_flows=1_000_000, max_bytes=1 << 20)
        )
        spec = SimulationSpec.from_trace(trace, uniform_path(5), 96)
        started = time.perf_counter()
        result = ContentionEngine(load=0.9).evaluate(spec)
        elapsed = time.perf_counter() - started
        assert result.num_flows == 1_000_000
        assert elapsed < 60.0, f"10^6 flows took {elapsed:.1f}s"
