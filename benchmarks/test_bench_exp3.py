"""Benchmark: Exp#3 (Fig. 7) — execution time of problem solving.

Directly measures the contrast the paper reports: the greedy heuristic
solves in milliseconds where ILP-based frameworks take orders of
magnitude longer (and hit their budgets at full scale).
"""

from repro.core.analyzer import ProgramAnalyzer
from repro.core.formulation import HermesMilp
from repro.core.heuristic import GreedyHeuristic
from repro.experiments.exp2_overhead import workload
from repro.experiments.exp3_exectime import main
from repro.network.paths import PathEnumerator
from repro.network.topozoo import topology_zoo_wan


def test_bench_exp3_report(benchmark, exp2_points):
    from conftest import record_report

    record_report(benchmark.pedantic(main, args=(exp2_points,), rounds=1, iterations=1))
    hermes = [
        p.record for p in exp2_points if p.record.framework == "Hermes"
    ]
    speed = [
        p.record for p in exp2_points if p.record.framework == "SPEED"
    ]
    # Orders of magnitude apart, as in Fig. 7.
    for h, s in zip(hermes, speed):
        assert h.solve_time_s * 10 < s.solve_time_s or s.timed_out


def test_bench_exp3_heuristic_solve(benchmark):
    programs = workload(20, seed=7)
    network = topology_zoo_wan(10)
    tdg = ProgramAnalyzer().analyze(programs)
    paths = PathEnumerator(network)
    heuristic = GreedyHeuristic()

    plan = benchmark(heuristic.deploy, tdg, network, paths)
    plan.validate()


def test_bench_exp3_milp_solve(benchmark):
    """The exact P#1 solve on a small instance (the tractable regime)."""
    programs = workload(4, seed=7)
    network = topology_zoo_wan(10)
    tdg = ProgramAnalyzer().analyze(programs)
    paths = PathEnumerator(network)
    formulation = HermesMilp(time_limit_s=30, max_candidates=3)

    plan = benchmark.pedantic(
        formulation.deploy,
        args=(tdg, network, paths),
        rounds=1,
        iterations=1,
    )
    plan.validate()
