"""Extension study: deployment overhead under a DCN flow trace.

The paper quantifies end-to-end impact one flow at a time (Fig. 2,
Fig. 8).  This study weights that impact by a realistic heavy-tailed
DCN trace: the per-packet overheads measured for each framework in the
Exp#2 setting are applied to the same 1000-flow trace, and the mean /
p99 FCT and the total extra wire bytes are reported.  The elephants pay
the full serialization tax, so framework differences compound over a
trace in a way single-flow numbers understate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.harness import E2E_HOPS
from repro.experiments.reporting import Table
from repro.network.topozoo import topology_zoo_wan
from repro.simulation.netsim import uniform_path
from repro.simulation.traces import (
    TraceConfig,
    TraceMetrics,
    evaluate_trace,
    generate_trace,
)
from repro.experiments.exp2_overhead import workload
from repro.experiments.harness import default_frameworks


@dataclass
class TraceStudyRow:
    framework: str
    overhead_bytes: int
    metrics: TraceMetrics


def run(
    topology_id: int = 5,
    num_programs: int = 20,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    trace_seed: int = 11,
    trace_config: TraceConfig = TraceConfig(),
    engine: str = "analytic",
) -> List[TraceStudyRow]:
    """Deploy, then weight each framework's overhead by the trace.

    ``engine`` picks the evaluation engine for the trace (the batch
    engine makes 10^5+-flow traces practical; the default analytic
    engine matches the historical numbers bit-for-bit).
    """
    programs = workload(num_programs, seed=7)
    network = topology_zoo_wan(topology_id)
    frameworks = (
        list(frameworks)
        if frameworks is not None
        else default_frameworks(include_optimal=False)
    )
    trace = generate_trace(trace_seed, trace_config)
    path = uniform_path(E2E_HOPS)

    rows: List[TraceStudyRow] = []
    for framework in frameworks:
        result = framework.deploy(programs, network)
        metrics = evaluate_trace(
            trace, path, result.overhead_bytes, engine=engine
        )
        rows.append(
            TraceStudyRow(
                framework=framework.name,
                overhead_bytes=result.overhead_bytes,
                metrics=metrics,
            )
        )
    return rows


def main(rows: Optional[List[TraceStudyRow]] = None) -> str:
    rows = rows if rows is not None else run()
    baseline_wire = min(r.metrics.total_wire_bytes for r in rows)
    table = Table(
        "Trace study: 1000-flow DCN trace under each deployment",
        [
            "framework",
            "overhead(B)",
            "mean FCT (us)",
            "p99 FCT (us)",
            "mean slowdown",
            "extra wire (MB)",
        ],
    )
    for row in rows:
        extra_mb = (
            row.metrics.total_wire_bytes - baseline_wire
        ) / 1_000_000
        table.add_row(
            [
                row.framework,
                row.overhead_bytes,
                round(row.metrics.mean_fct_us, 1),
                round(row.metrics.p99_fct_us, 1),
                round(row.metrics.mean_slowdown, 4),
                round(extra_mb, 2),
            ]
        )
    output = table.render()
    print(output)
    return output


if __name__ == "__main__":
    main()
