"""Unit tests for repro.dataplane.program."""

import pytest

from repro.dataplane.actions import modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program, ProgramValidationError


def mat(name, writes=None, demand=0.2):
    actions = [modify(writes)] if writes is not None else [no_op()]
    return Mat(name, actions=actions, resource_demand=demand)


class TestValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ProgramValidationError):
            Program("", [mat("a")])

    def test_rejects_empty_program(self):
        with pytest.raises(ProgramValidationError, match="no MATs"):
            Program("p", [])

    def test_rejects_duplicate_mat_names(self):
        with pytest.raises(ProgramValidationError, match="duplicate"):
            Program("p", [mat("a"), mat("a")])

    def test_conditional_gate_must_exist(self):
        with pytest.raises(ProgramValidationError, match="gate"):
            Program("p", [mat("a"), mat("b")], [("ghost", "b")])

    def test_conditional_gated_must_exist(self):
        with pytest.raises(ProgramValidationError, match="not a MAT"):
            Program("p", [mat("a"), mat("b")], [("a", "ghost")])

    def test_conditional_must_respect_order(self):
        with pytest.raises(ProgramValidationError, match="precede"):
            Program("p", [mat("a"), mat("b")], [("b", "a")])


class TestQueries:
    def test_positions_follow_pipeline_order(self):
        p = Program("p", [mat("a"), mat("b"), mat("c")])
        assert p.position("a") == 0
        assert p.position("c") == 2
        assert p.executes_before("a", "c")
        assert not p.executes_before("c", "a")

    def test_mat_lookup(self):
        p = Program("p", [mat("a")])
        assert p.mat("a").name == "a"
        with pytest.raises(KeyError):
            p.mat("ghost")

    def test_is_conditional(self):
        p = Program("p", [mat("a"), mat("b")], [("a", "b")])
        assert p.is_conditional("a", "b")
        assert not p.is_conditional("b", "a")

    def test_total_resource_demand(self):
        p = Program("p", [mat("a", demand=0.2), mat("b", demand=0.3)])
        assert p.total_resource_demand == pytest.approx(0.5)

    def test_writers_and_matchers(self):
        field = metadata_field("m.f", 8)
        writer = Mat("w", actions=[modify(field)])
        reader = Mat(
            "r", match_fields=[field], actions=[no_op()]
        )
        p = Program("p", [writer, reader])
        assert [m.name for m in p.writers_of("m.f")] == ["w"]
        assert [m.name for m in p.matchers_of("m.f")] == ["r"]

    def test_field_names_cover_all_references(self):
        field = metadata_field("m.f", 8)
        hdr = header_field("ipv4.src", 32)
        p = Program(
            "p",
            [
                Mat("w", match_fields=[hdr], actions=[modify(field)]),
            ],
        )
        assert p.field_names() == {"m.f", "ipv4.src"}

    def test_len_and_iter(self):
        p = Program("p", [mat("a"), mat("b")])
        assert len(p) == 2
        assert [m.name for m in p] == ["a", "b"]
