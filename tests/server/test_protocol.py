"""Unit tests for the repro.server/v1 wire protocol."""

import json

import pytest

from repro.server import protocol


class TestFraming:
    def test_encode_decode_round_trip(self):
        frame = protocol.request(7, "deploy", {"workload": "real:4"})
        blob = protocol.encode_frame(frame)
        assert blob.endswith(b"\n")
        assert blob.count(b"\n") == 1
        assert protocol.decode_frame(blob[:-1]) == frame

    def test_encoding_is_canonical(self):
        a = protocol.encode_frame(
            {"proto": protocol.PROTOCOL, "id": 1, "op": "ping"}
        )
        b = protocol.encode_frame(
            {"op": "ping", "id": 1, "proto": protocol.PROTOCOL}
        )
        assert a == b
        # Compact separators, sorted keys — the plan-artifact canon.
        assert b": " not in a and b'"id"' in a

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_frame(b"{nope")
        assert err.value.code == "bad_frame"

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_frame(b"[1, 2]")
        assert err.value.code == "bad_frame"

    def test_decode_rejects_wrong_protocol(self):
        line = json.dumps({"proto": "repro.server/v0", "id": 0}).encode()
        with pytest.raises(protocol.ProtocolError, match="repro.server/v1"):
            protocol.decode_frame(line)

    def test_decode_rejects_oversized_frame(self):
        line = b"x" * (protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(protocol.ProtocolError, match="exceeds cap"):
            protocol.decode_frame(line)


class TestRequestValidation:
    def _frame(self, **overrides):
        frame = {"proto": protocol.PROTOCOL, "id": 1, "op": "ping"}
        frame.update(overrides)
        return frame

    def test_accepts_well_formed(self):
        protocol.validate_request(self._frame())
        protocol.validate_request(self._frame(params={"a": 1}))
        protocol.validate_request(self._frame(id="abc"))

    def test_rejects_missing_id(self):
        frame = self._frame()
        del frame["id"]
        with pytest.raises(protocol.ProtocolError, match="no id"):
            protocol.validate_request(frame)

    def test_rejects_structured_id(self):
        with pytest.raises(protocol.ProtocolError, match="scalar"):
            protocol.validate_request(self._frame(id=[1]))

    def test_rejects_missing_op(self):
        frame = self._frame()
        del frame["op"]
        with pytest.raises(protocol.ProtocolError, match="no op"):
            protocol.validate_request(frame)

    def test_rejects_unknown_op(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request(self._frame(op="teleport"))
        assert err.value.code == "unknown_op"

    def test_rejects_non_object_params(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.validate_request(self._frame(params=[1]))
        assert err.value.code == "invalid_params"


class TestEnvelopes:
    def test_response_shape(self):
        frame = protocol.response(3, {"x": 1})
        assert frame == {
            "proto": protocol.PROTOCOL,
            "id": 3,
            "ok": True,
            "result": {"x": 1},
        }
        assert not protocol.is_event(frame)

    def test_error_shape_and_code_fallback(self):
        frame = protocol.error_response(3, "invalid_params", "boom")
        assert frame["ok"] is False
        assert frame["error"]["code"] == "invalid_params"
        # Unknown codes degrade to internal rather than leaking.
        assert (
            protocol.error_response(3, "weird", "x")["error"]["code"]
            == "internal"
        )

    def test_event_shape(self):
        frame = protocol.event_frame("telemetry", 5, {"kind": "sim.x"})
        assert protocol.is_event(frame)
        assert frame["seq"] == 5
        assert frame["data"]["kind"] == "sim.x"

    def test_protocol_error_requires_known_code(self):
        err = protocol.ProtocolError("bad_frame", "nope")
        assert err.code in protocol.ERROR_CODES
