"""Data plane program model.

This package models P4-style data plane programs at the level of detail
the Hermes framework consumes: packet fields (header vs. metadata and
their widths), actions (which fields they read and write), match rules,
match-action tables (MATs), and whole programs (ordered collections of
MATs with control flow between them).

The model intentionally stays declarative: it captures *what* a program
matches and modifies, not an executable packet-processing semantics,
because the deployment problem only depends on field read/write sets,
rule capacities and resource demands.
"""

from repro.dataplane.fields import (
    Field,
    FieldKind,
    FieldSet,
    header_field,
    metadata_field,
    standard_headers,
)
from repro.dataplane.actions import (
    Action,
    ActionPrimitive,
    counter_update,
    drop,
    forward,
    hash_compute,
    modify,
    no_op,
)
from repro.dataplane.rules import MatchKind, MatchSpec, Rule
from repro.dataplane.mat import Mat, ResourceDemand
from repro.dataplane.program import Program, ProgramValidationError
from repro.dataplane.spec import SpecError, program_from_dict, program_to_dict

__all__ = [
    "Action",
    "ActionPrimitive",
    "Field",
    "FieldKind",
    "FieldSet",
    "Mat",
    "MatchKind",
    "MatchSpec",
    "Program",
    "ProgramValidationError",
    "ResourceDemand",
    "Rule",
    "SpecError",
    "counter_update",
    "drop",
    "forward",
    "hash_compute",
    "header_field",
    "metadata_field",
    "modify",
    "no_op",
    "program_from_dict",
    "program_to_dict",
    "standard_headers",
]
