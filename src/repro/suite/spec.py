"""The ``repro.suite/v1`` spec: a declarative experiment suite.

A suite spec is a small JSON (or YAML) document that names a *kind* of
experiment and the *axes* to cross-product; the compiler
(:mod:`repro.suite.compiler`) resolves it into deterministic work —
runner cells for deployments, scenario seeds for churn, sweep jobs for
traffic — and aggregators (:mod:`repro.suite.aggregate`) fold the
results into tables.  exp1-exp7 and fig2 ship as spec files under
:mod:`repro.suite.specs`; a new experiment is a new data file, not new
code.

Schema (all unknown keys are rejected, at every level)::

    {
      "suite": "repro.suite/v1",
      "name": "exp2",                  # identifier (telemetry, cache)
      "kind": "deployment",            # see KIND_AXES
      "title": "...",                  # optional human heading
      "axes": {...},                   # per-kind, see below
      "params": {...},                 # per-kind knobs, all optional
      "aggregate": ["exp2"]            # aggregator names, optional
    }

Axes by kind:

* ``deployment`` — ``workloads`` (workload-grammar strings or
  ``{"spec", "tag"}``), ``topologies`` (catalog names / topology
  grammar, same forms), ``frameworks`` (either
  ``{"set": "paper", ...}`` for the paper's comparison set or a list
  of registry names / ``{"name", **kwargs}``).
* ``churn`` — ``seeds`` (ints; one scenario per seed).
* ``resources`` — ``frameworks`` (list form only; optional).
* ``overhead_sweep`` — ``packet_sizes`` and ``overheads`` (ints).
* ``traffic`` — ``hours`` (numbers) and ``overheads`` (ints).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

SUITE_VERSION = "repro.suite/v1"

#: Axis names each kind accepts (required ones in KIND_REQUIRED_AXES).
KIND_AXES: Dict[str, frozenset] = {
    "deployment": frozenset({"workloads", "topologies", "frameworks"}),
    "churn": frozenset({"seeds"}),
    "resources": frozenset({"frameworks"}),
    "overhead_sweep": frozenset({"packet_sizes", "overheads"}),
    "traffic": frozenset({"hours", "overheads"}),
}

KIND_REQUIRED_AXES: Dict[str, frozenset] = {
    "deployment": frozenset({"workloads", "topologies"}),
    "churn": frozenset({"seeds"}),
    "resources": frozenset(),
    "overhead_sweep": frozenset({"packet_sizes", "overheads"}),
    "traffic": frozenset({"hours", "overheads"}),
}

#: Per-kind parameter defaults; unknown params are rejected.
KIND_PARAMS: Dict[str, Dict[str, Any]] = {
    "deployment": {
        "packet_payload_bytes": 1024,
        "with_end_to_end": True,
        # which axis coordinate becomes Cell.tag ("workload"|"topology")
        "tag_axis": "workload",
        # seeds unseeded wan:N:E topology specs
        "seed": None,
    },
    "churn": {
        "events": 8,
        "workload": "real:10",
    },
    "resources": {
        "num_sketches": 10,
    },
    "overhead_sweep": {
        "message_bytes": 1_000_000,
        "hops": 5,
        "engine": "analytic",
    },
    "traffic": {
        "flows": 200,
        "packet_payload_bytes": 1024,
        "message_bytes": 1_000_000,
        "hops": 5,
        # a DiurnalLoad document (repro.simulation.spec.DiurnalLoad)
        "load": {},
    },
}

_TOP_LEVEL_KEYS = {"suite", "name", "kind", "title", "axes", "params",
                   "aggregate"}


class SuiteSpecError(ValueError):
    """A suite document failed validation."""


@dataclass(frozen=True)
class AxisEntry:
    """One resolved point of a string-valued axis: a spec + its tag.

    ``tag`` labels the coordinate in tables and ``Cell.tag`` (e.g. the
    program count 2 for workload ``real:2``); it defaults to the spec
    string itself.
    """

    spec: str
    tag: Any = None

    def __post_init__(self) -> None:
        if self.tag is None:
            object.__setattr__(self, "tag", self.spec)

    def to_doc(self) -> Any:
        if self.tag == self.spec:
            return self.spec
        return {"spec": self.spec, "tag": self.tag}


def _parse_axis_entries(kind_name: str, raw: Any) -> Tuple[AxisEntry, ...]:
    if not isinstance(raw, (list, tuple)):
        raise SuiteSpecError(f"axis {kind_name!r} must be a list")
    entries: List[AxisEntry] = []
    for item in raw:
        if isinstance(item, str):
            entries.append(AxisEntry(spec=item))
        elif isinstance(item, dict):
            unknown = set(item) - {"spec", "tag"}
            if unknown:
                raise SuiteSpecError(
                    f"unknown keys in {kind_name!r} entry: "
                    f"{sorted(unknown)}"
                )
            if "spec" not in item:
                raise SuiteSpecError(
                    f"{kind_name!r} entry needs a 'spec' key: {item!r}"
                )
            entries.append(
                AxisEntry(spec=item["spec"], tag=item.get("tag"))
            )
        else:
            raise SuiteSpecError(
                f"{kind_name!r} entries must be strings or objects, "
                f"got {item!r}"
            )
    if not entries:
        raise SuiteSpecError(f"axis {kind_name!r} is empty")
    seen = set()
    for entry in entries:
        if entry.spec in seen:
            raise SuiteSpecError(
                f"duplicate {kind_name!r} entry {entry.spec!r}"
            )
        seen.add(entry.spec)
    return tuple(entries)


def _parse_scalar_axis(kind_name: str, raw: Any) -> Tuple[Any, ...]:
    if not isinstance(raw, (list, tuple)):
        raise SuiteSpecError(f"axis {kind_name!r} must be a list")
    values = list(raw)
    if not values:
        raise SuiteSpecError(f"axis {kind_name!r} is empty")
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise SuiteSpecError(
                f"{kind_name!r} entries must be numbers, got {v!r}"
            )
    if len(set(values)) != len(values):
        raise SuiteSpecError(f"duplicate {kind_name!r} entries")
    return tuple(values)


def _parse_frameworks_axis(raw: Any) -> Any:
    """Validate the frameworks axis; resolution happens in the compiler.

    Returns either ``{"set": "paper", ...}`` (normalized dict) or a
    tuple of ``(name, kwargs)`` pairs.
    """
    if isinstance(raw, dict):
        unknown = set(raw) - {
            "set", "ilp_time_limit_s", "per_program_ilp_time_limit_s",
            "include_optimal", "solver_profile",
        }
        if unknown:
            raise SuiteSpecError(
                f"unknown keys in frameworks set: {sorted(unknown)}"
            )
        if raw.get("set") != "paper":
            raise SuiteSpecError(
                f"unknown framework set {raw.get('set')!r} "
                "(only 'paper' is defined)"
            )
        return dict(raw)
    if not isinstance(raw, (list, tuple)):
        raise SuiteSpecError(
            "frameworks must be a {'set': ...} object or a list"
        )
    entries: List[Tuple[str, Dict[str, Any]]] = []
    for item in raw:
        if isinstance(item, str):
            entries.append((item, {}))
        elif isinstance(item, dict):
            if "name" not in item:
                raise SuiteSpecError(
                    f"framework entry needs a 'name' key: {item!r}"
                )
            kwargs = {k: v for k, v in item.items() if k != "name"}
            entries.append((item["name"], kwargs))
        else:
            raise SuiteSpecError(
                f"framework entries must be strings or objects, "
                f"got {item!r}"
            )
    if not entries:
        raise SuiteSpecError("axis 'frameworks' is empty")
    from repro.suite.compiler import FRAMEWORK_REGISTRY

    for name, _ in entries:
        if name not in FRAMEWORK_REGISTRY:
            raise SuiteSpecError(
                f"unknown framework {name!r}; known: "
                f"{sorted(FRAMEWORK_REGISTRY)}"
            )
    return tuple(entries)


@dataclass(frozen=True)
class SuiteSpec:
    """A validated, resolved ``repro.suite/v1`` document."""

    name: str
    kind: str
    title: str = ""
    axes: Mapping[str, Any] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)
    aggregate: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "SuiteSpec":
        if not isinstance(doc, Mapping):
            raise SuiteSpecError("suite spec must be an object")
        unknown = set(doc) - _TOP_LEVEL_KEYS
        if unknown:
            raise SuiteSpecError(
                f"unknown suite keys: {sorted(unknown)}"
            )
        version = doc.get("suite")
        if version != SUITE_VERSION:
            raise SuiteSpecError(
                f"unsupported suite version {version!r} "
                f"(expected {SUITE_VERSION!r})"
            )
        name = doc.get("name")
        if not isinstance(name, str) or not name:
            raise SuiteSpecError("suite needs a non-empty 'name'")
        kind = doc.get("kind")
        if kind not in KIND_AXES:
            raise SuiteSpecError(
                f"unknown suite kind {kind!r}; known: "
                f"{sorted(KIND_AXES)}"
            )
        title = doc.get("title", "")
        if not isinstance(title, str):
            raise SuiteSpecError("'title' must be a string")

        raw_axes = doc.get("axes", {})
        if not isinstance(raw_axes, Mapping):
            raise SuiteSpecError("'axes' must be an object")
        allowed = KIND_AXES[kind]
        unknown = set(raw_axes) - allowed
        if unknown:
            raise SuiteSpecError(
                f"unknown axes for kind {kind!r}: {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
        missing = KIND_REQUIRED_AXES[kind] - set(raw_axes)
        if missing:
            raise SuiteSpecError(
                f"kind {kind!r} requires axes {sorted(missing)}"
            )
        axes: Dict[str, Any] = {}
        for axis_name, raw in raw_axes.items():
            if axis_name in ("workloads", "topologies"):
                axes[axis_name] = _parse_axis_entries(axis_name, raw)
            elif axis_name == "frameworks":
                axes[axis_name] = _parse_frameworks_axis(raw)
            elif axis_name == "seeds":
                values = _parse_scalar_axis(axis_name, raw)
                for v in values:
                    if not isinstance(v, int):
                        raise SuiteSpecError(
                            f"'seeds' entries must be integers, got {v!r}"
                        )
                axes[axis_name] = values
            else:  # packet_sizes, overheads, hours
                axes[axis_name] = _parse_scalar_axis(axis_name, raw)

        raw_params = doc.get("params", {})
        if not isinstance(raw_params, Mapping):
            raise SuiteSpecError("'params' must be an object")
        defaults = KIND_PARAMS[kind]
        unknown = set(raw_params) - set(defaults)
        if unknown:
            raise SuiteSpecError(
                f"unknown params for kind {kind!r}: {sorted(unknown)} "
                f"(allowed: {sorted(defaults)})"
            )
        params = dict(defaults)
        params.update(raw_params)
        if kind == "deployment" and params["tag_axis"] not in (
            "workload", "topology"
        ):
            raise SuiteSpecError(
                f"tag_axis must be 'workload' or 'topology', "
                f"got {params['tag_axis']!r}"
            )
        if kind == "traffic":
            # validate the load model document eagerly
            from repro.simulation.spec import DiurnalLoad

            try:
                DiurnalLoad.from_dict(dict(params["load"]))
            except (TypeError, ValueError) as exc:
                raise SuiteSpecError(f"bad 'load' model: {exc}") from exc

        raw_aggregate = doc.get("aggregate", ())
        if isinstance(raw_aggregate, str):
            raise SuiteSpecError("'aggregate' must be a list of names")
        if not isinstance(raw_aggregate, (list, tuple)):
            raise SuiteSpecError("'aggregate' must be a list of names")
        aggregate = tuple(raw_aggregate)
        for agg in aggregate:
            if not isinstance(agg, str):
                raise SuiteSpecError(
                    f"aggregator names must be strings, got {agg!r}"
                )
        from repro.suite.aggregate import AGGREGATORS

        for agg in aggregate:
            if agg not in AGGREGATORS:
                raise SuiteSpecError(
                    f"unknown aggregator {agg!r}; known: "
                    f"{sorted(AGGREGATORS)}"
                )

        return SuiteSpec(
            name=name,
            kind=kind,
            title=title,
            axes=axes,
            params=params,
            aggregate=aggregate,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The canonical document (round-trips through ``from_dict``)."""
        axes: Dict[str, Any] = {}
        for axis_name, value in self.axes.items():
            if axis_name in ("workloads", "topologies"):
                axes[axis_name] = [e.to_doc() for e in value]
            elif axis_name == "frameworks":
                if isinstance(value, dict):
                    axes[axis_name] = dict(value)
                else:
                    axes[axis_name] = [
                        name if not kwargs else {"name": name, **kwargs}
                        for name, kwargs in value
                    ]
            else:
                axes[axis_name] = list(value)
        doc: Dict[str, Any] = {
            "suite": SUITE_VERSION,
            "name": self.name,
            "kind": self.kind,
            "axes": axes,
        }
        if self.title:
            doc["title"] = self.title
        # only non-default params, so the document stays minimal
        defaults = KIND_PARAMS[self.kind]
        params = {
            k: v for k, v in self.params.items() if v != defaults.get(k)
        }
        if params:
            doc["params"] = params
        if self.aggregate:
            doc["aggregate"] = list(self.aggregate)
        return doc

    # ------------------------------------------------------------------
    @staticmethod
    def loads(text: str) -> "SuiteSpec":
        """Parse a JSON (or, when available, YAML) suite document."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = _load_yaml(text)
        return SuiteSpec.from_dict(doc)

    @staticmethod
    def load(path: str) -> "SuiteSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return SuiteSpec.loads(fh.read())


def _load_yaml(text: str) -> Any:
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml is an extra
        raise SuiteSpecError(
            "spec is not valid JSON and PyYAML is not installed"
        ) from None
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SuiteSpecError(f"spec is neither JSON nor YAML: {exc}")
    if not isinstance(doc, dict):
        raise SuiteSpecError("suite spec must be an object")
    return doc


__all__ = [
    "AxisEntry",
    "KIND_AXES",
    "KIND_PARAMS",
    "KIND_REQUIRED_AXES",
    "SUITE_VERSION",
    "SuiteSpec",
    "SuiteSpecError",
]
