"""Per-connection session state: the warm-deploy path and its history.

A :class:`Session` is what makes the daemon more than a remote
procedure wrapper around :mod:`repro.server.ops`: it remembers the
plan a connection last deployed, so a repeat ``deploy`` with the same
solve-relevant params takes the warm incremental rung
(:class:`~repro.runtime.incremental.IncrementalReplanner` rebase) in
fractions of a millisecond instead of re-running the cold pipeline.
The session keeps one replanner instance alive across deploys, so its
delta formulation's :class:`~repro.milp.presolve.PresolveCache` and
warm incumbents carry over too.

The warm path is taken **only** when the solve-relevant params are
identical to the previous deploy's — exactly the case where a rebase
provably reproduces the cold plan (same placements, re-derived
routing/metrics ⇒ same fingerprint) — so the server/CLI byte
differential survives warmth: the deterministic view of a warm deploy
equals the cold CLI document for the same params.  Anything that could
change the solution (different workload, topology, seed, mode, ...)
falls back to the cold path.

Every activated plan is appended to a per-session
:class:`~repro.runtime.store.PlanStore` (versioned, diffed,
digest-comparable).  With a ``state_dir`` the history and the last
solve params are persisted after each deploy and recovered on
construction, so a re-attached session resumes its history — digest
continuity included — and its next identical deploy is warm again.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.plan.serialize import canonical_dumps, plan_from_dict
from repro.runtime import (
    IncrementalEscalation,
    IncrementalReplanner,
    PlanStore,
    StoreReloadError,
)
from repro.server.ops import (
    DEPLOY_DEFAULTS,
    OpError,
    deploy_doc,
    deploy_op,
    plan_diff_op,
    resolve_params,
)
from repro.telemetry import emit

#: Deploy params that do not affect the produced plan — they only
#: decorate the result document, so they are excluded from the key
#: that decides warm-vs-cold.
_DECORATION_PARAMS = frozenset({"verify", "configs"})

#: Session state file written next to the plan history.
_SESSION_FILE = "session.json"


def solve_key(params: Mapping[str, Any]) -> str:
    """Canonical key over the solve-relevant deploy params."""
    return canonical_dumps(
        {k: v for k, v in params.items() if k not in _DECORATION_PARAMS}
    )


class Session:
    """One client's control-plane state on the server.

    Args:
        session_id: Server-assigned identifier (shown in telemetry
            and ``session_info``).
        state_dir: Optional directory for persistence/recovery.  If
            it already holds a written session, the plan history and
            last solve params are reloaded so the session continues
            where its predecessor stopped.
    """

    def __init__(
        self, session_id: str, state_dir: Optional[str] = None
    ) -> None:
        self.session_id = session_id
        self.state_dir = state_dir
        self.store = PlanStore()
        self.warm_hits = 0
        self.cold_solves = 0
        self.subscribed = False
        self._solve_key: Optional[str] = None
        self._current_plan = None
        self._replanner = IncrementalReplanner()
        self._recovered = False
        if state_dir and os.path.exists(
            os.path.join(state_dir, _SESSION_FILE)
        ):
            self._recover(state_dir)

    # ------------------------------------------------------------------
    # Ops with session state
    # ------------------------------------------------------------------
    def deploy(
        self,
        params: Optional[Mapping[str, Any]] = None,
        run_cold: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Deploy, warm when possible, and record the plan version.

        ``run_cold`` lets the service route the cold solve through its
        process pool; it must behave exactly like
        :func:`repro.server.ops.deploy_op` on resolved params.

        Returns the op document plus a ``session`` section (outside
        the deterministic view) describing how this session produced
        it.
        """
        p = resolve_params(params, DEPLOY_DEFAULTS)
        key = solve_key(p)
        doc = None
        source = "cold"
        if self._current_plan is not None and key == self._solve_key:
            warm = self._warm_deploy(p)
            if warm is not None:
                doc, source = warm
        if doc is None:
            doc = (run_cold or deploy_op)(p)
            self.cold_solves += 1
        else:
            self.warm_hits += 1
        plan = plan_from_dict(doc["plan"])
        reason = (
            "initial"
            if not len(self.store)
            else ("incremental" if source.startswith("warm") else "replan")
        )
        entry = self.store.append(
            plan, time_s=float(len(self.store)), reason=reason
        )
        self._current_plan = plan
        self._solve_key = key
        emit(
            "server.deploy",
            session=self.session_id,
            source=source,
            version=entry.version,
            fingerprint=entry.fingerprint,
        )
        if self.state_dir:
            self._persist(p)
        doc["session"] = {
            "source": source,
            "plan_version": entry.version,
            "recovered": self._recovered,
        }
        return doc

    def _warm_deploy(self, p: Dict[str, Any]):
        """Rebase the current plan onto freshly parsed inputs.

        Returns ``(doc, source)`` or None when the replanner escalates
        (the caller then takes the cold path — same result, slower).
        """
        from repro.cli import parse_topology, parse_workload

        start = time.perf_counter()
        try:
            programs = parse_workload(p["workload"], seed=p["seed"])
            network = parse_topology(p["topology"], seed=p["seed"])
        except (ValueError, KeyError) as exc:
            raise OpError(str(exc)) from exc
        try:
            plan, mode = self._replanner.replan(
                programs, network, self._current_plan
            )
        except IncrementalEscalation as exc:
            emit(
                "server.warm_escalated",
                session=self.session_id,
                reason=str(exc),
            )
            return None
        wall_s = time.perf_counter() - start
        doc = deploy_doc(
            plan,
            num_programs=len(programs),
            params=p,
            solve_time_s=wall_s,
            wall_s=wall_s,
        )
        return doc, f"warm:{mode}"

    def plan_diff(
        self, params: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Plan diff; ``old`` defaults to the session's current plan."""
        params = dict(params or {})
        if params.get("old") is None and self._current_plan is not None:
            params["old"] = self._current_plan.to_dict()
        if params.get("new") is None and self._current_plan is not None:
            params["new"] = self._current_plan.to_dict()
        return plan_diff_op(params)

    def info(self) -> Dict[str, Any]:
        """The ``session_info`` result document."""
        latest = self.store.latest
        return {
            "session_id": self.session_id,
            "deploys": self.warm_hits + self.cold_solves,
            "warm_hits": self.warm_hits,
            "cold_solves": self.cold_solves,
            "plan_version": latest.version if latest else None,
            "fingerprint": latest.fingerprint if latest else None,
            "history_digest": (
                self.store.history_digest() if len(self.store) else None
            ),
            "recovered": self._recovered,
            "subscribed": self.subscribed,
        }

    # ------------------------------------------------------------------
    # Persistence / recovery
    # ------------------------------------------------------------------
    def _persist(self, resolved_params: Dict[str, Any]) -> None:
        """Write the history and the solve params to ``state_dir``."""
        self.store.write_dir(self.state_dir)
        meta = {
            "schema": "repro.session/v1",
            "params": {
                k: v
                for k, v in resolved_params.items()
                if k not in _DECORATION_PARAMS
            },
            "warm_hits": self.warm_hits,
            "cold_solves": self.cold_solves,
        }
        path = os.path.join(self.state_dir, _SESSION_FILE)
        with open(path, "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def _recover(self, state_dir: str) -> None:
        """Resume from a persisted session directory.

        A failed recovery raises :class:`StoreReloadError` — a corrupt
        state dir must be noticed, not silently restarted cold.
        """
        path = os.path.join(state_dir, _SESSION_FILE)
        try:
            with open(path) as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreReloadError(f"cannot read {path}: {exc}") from exc
        self.store = PlanStore.read_dir(state_dir)
        latest = self.store.latest
        if latest is not None:
            self._current_plan = latest.plan
            self._solve_key = canonical_dumps(meta.get("params", {}))
        self.warm_hits = int(meta.get("warm_hits", 0))
        self.cold_solves = int(meta.get("cold_solves", 0))
        self._recovered = True
        emit(
            "server.session_recovered",
            session=self.session_id,
            versions=len(self.store),
        )
