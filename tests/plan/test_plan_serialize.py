"""Round-trip and schema tests for the canonical plan serialization.

The acceptance contract: for every switch.p4-like workload,
``plan_from_dict(plan_to_dict(plan))`` reproduces the exact metrics
(``A_max``, ``t_e2e``, ``Q_occ``), passes full validation, and hashes
to the same fingerprint — so a plan document is a faithful, portable
artifact.
"""

import json

import pytest

from repro.core import Hermes
from repro.network.generators import linear_topology
from repro.plan import (
    SCHEMA,
    SCHEMA_VERSION,
    DeploymentPlan,
    PlanSchemaError,
    canonical_dumps,
    plan_fingerprint,
    plan_from_dict,
    plan_to_dict,
    read_plan,
    write_plan,
)
from repro.workloads.switchp4 import real_programs


def deploy(num_programs):
    # Tight switches force multi-switch splits, so the round trip
    # exercises routing and non-zero metadata pairs, not just
    # placements; the chain grows with the workload so every size
    # stays feasible.
    network = linear_topology(
        max(3, num_programs), num_stages=4, stage_capacity=1.0
    )
    return Hermes().deploy(real_programs(num_programs), network).plan


@pytest.fixture(scope="module")
def sample_plan():
    return deploy(4)


class TestRoundTrip:
    @pytest.mark.parametrize("num_programs", range(1, 11))
    def test_real_workloads_round_trip(self, num_programs):
        plan = deploy(num_programs)
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.max_metadata_bytes() == plan.max_metadata_bytes()
        assert (
            restored.end_to_end_latency_us() == plan.end_to_end_latency_us()
        )
        assert (
            restored.num_occupied_switches() == plan.num_occupied_switches()
        )
        restored.validate()
        assert plan_fingerprint(restored) == plan_fingerprint(plan)

    def test_round_trip_preserves_placements_and_routing(self, sample_plan):
        restored = plan_from_dict(plan_to_dict(sample_plan))
        assert dict(restored.placements) == dict(sample_plan.placements)
        assert set(restored.routing) == set(sample_plan.routing)
        for pair, path in sample_plan.routing.items():
            assert restored.routing[pair].switches == path.switches
            assert restored.routing[pair].latency_us == path.latency_us

    def test_plan_methods_defer_to_serializer(self, sample_plan):
        assert sample_plan.to_dict() == plan_to_dict(sample_plan)
        restored = DeploymentPlan.from_dict(sample_plan.to_dict())
        assert sample_plan.fingerprint() == restored.fingerprint()

    def test_document_is_json_serializable(self, sample_plan):
        doc = plan_to_dict(sample_plan)
        assert doc["schema"] == SCHEMA
        assert doc["version"] == SCHEMA_VERSION
        json.dumps(doc)  # must not raise

    def test_metrics_block_matches_plan(self, sample_plan):
        metrics = plan_to_dict(sample_plan)["metrics"]
        assert (
            metrics["max_metadata_bytes"]
            == sample_plan.max_metadata_bytes()
        )
        assert (
            metrics["end_to_end_latency_us"]
            == sample_plan.end_to_end_latency_us()
        )
        assert (
            metrics["num_occupied_switches"]
            == sample_plan.num_occupied_switches()
        )

    def test_partially_routed_plan_exports_null_latency(self, sample_plan):
        if not sample_plan.routing:
            pytest.skip("workload landed on one switch")
        unrouted = DeploymentPlan(
            sample_plan.tdg,
            sample_plan.network,
            sample_plan.placements,
            {},
        )
        doc = plan_to_dict(unrouted)
        assert doc["metrics"]["end_to_end_latency_us"] is None
        # Still reloadable; validate() then reports the missing route.
        restored = plan_from_dict(doc)
        from repro.plan import DeploymentError

        with pytest.raises(DeploymentError, match="no routed path"):
            restored.validate()


class TestCanonicalForm:
    def test_canonical_dumps_is_stable(self, sample_plan):
        a = canonical_dumps(plan_to_dict(sample_plan))
        b = canonical_dumps(plan_to_dict(sample_plan))
        assert a == b

    def test_fingerprint_is_stable_across_round_trips(self, sample_plan):
        restored = plan_from_dict(plan_to_dict(sample_plan))
        twice = plan_from_dict(plan_to_dict(restored))
        assert (
            plan_fingerprint(sample_plan)
            == plan_fingerprint(restored)
            == plan_fingerprint(twice)
        )

    def test_placements_sorted_by_mat_name(self, sample_plan):
        doc = plan_to_dict(sample_plan)
        names = [p["mat"] for p in doc["placements"]]
        assert names == sorted(names)

    def test_routing_sorted_by_pair(self, sample_plan):
        doc = plan_to_dict(sample_plan)
        pairs = [tuple(entry["pair"]) for entry in doc["routing"]]
        assert pairs == sorted(pairs)


class TestSchemaGuard:
    def test_wrong_schema_rejected(self, sample_plan):
        doc = plan_to_dict(sample_plan)
        doc["schema"] = "somebody.else/v1"
        with pytest.raises(PlanSchemaError, match="not a plan document"):
            plan_from_dict(doc)

    def test_missing_schema_rejected(self):
        with pytest.raises(PlanSchemaError, match="not a plan document"):
            plan_from_dict({"version": SCHEMA_VERSION})

    def test_future_version_rejected(self, sample_plan):
        doc = plan_to_dict(sample_plan)
        doc["version"] = SCHEMA_VERSION + 1
        with pytest.raises(PlanSchemaError, match="unsupported"):
            plan_from_dict(doc)

    def test_non_mapping_rejected(self):
        with pytest.raises(PlanSchemaError, match="must be an object"):
            plan_from_dict([1, 2, 3])

    def test_structurally_broken_document_rejected(self, sample_plan):
        doc = json.loads(canonical_dumps(plan_to_dict(sample_plan)))
        del doc["tdg"]["nodes"]
        with pytest.raises(PlanSchemaError, match="malformed"):
            plan_from_dict(doc)


class TestFileIO:
    def test_write_then_read(self, sample_plan, tmp_path):
        path = tmp_path / "plan.json"
        write_plan(sample_plan, str(path))
        restored = read_plan(str(path))
        assert plan_fingerprint(restored) == plan_fingerprint(sample_plan)
        restored.validate()

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(PlanSchemaError, match="not valid JSON"):
            read_plan(str(path))
