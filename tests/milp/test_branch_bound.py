"""Unit tests for the branch & bound MILP solver."""

import pytest

from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import BranchBoundSolver, solve
from repro.milp.solution import SolveStatus


class TestBasicSolves:
    def test_pure_lp(self):
        m = Model()
        x = m.add_var("x", 0, 10)
        m.add_constr(x >= 2.5)
        m.minimize(x)
        s = solve(m)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == pytest.approx(2.5)

    def test_binary_knapsack(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(4)]
        weights = [3, 4, 2, 5]
        values = [10, 13, 7, 16]
        m.add_constr(
            LinExpr.total(w * x for w, x in zip(weights, xs)) <= 7
        )
        m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
        s = solve(m)
        assert s.status is SolveStatus.OPTIMAL
        assert s.objective == pytest.approx(23)  # items 1 and 0... 13+10

    def test_integer_rounding_not_naive(self):
        # LP optimum x=2.5; integer optimum must branch.
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_constr(2 * x + 2 * y >= 5)
        m.minimize(x + y)
        s = solve(m)
        assert s.objective == pytest.approx(3)

    def test_mixed_integer_continuous(self):
        m = Model()
        a = m.add_integer("a", 0, 10)
        b = m.add_var("b", 0, 5)
        m.add_constr(2 * a + b >= 7.5)
        m.minimize(3 * a + b)
        s = solve(m)
        assert s.objective == pytest.approx(9.5)
        assert s[a] == pytest.approx(2)
        assert s[b] == pytest.approx(3.5)

    def test_equality_constraints(self):
        m = Model()
        x = m.add_integer("x", 0, 10)
        y = m.add_integer("y", 0, 10)
        m.add_constr(x + y == 7)
        m.minimize(2 * x + y)
        s = solve(m)
        assert s.objective == pytest.approx(7)
        assert s.rounded(x) == 0 and s.rounded(y) == 7


class TestStatuses:
    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 2)
        assert solve(m).status is SolveStatus.INFEASIBLE

    def test_integer_infeasible_despite_lp_feasible(self):
        # 2x == 1 has LP solution 0.5 but no integer solution.
        m = Model()
        x = m.add_integer("x", 0, 10)
        m.add_constr(2 * x == 1)
        m.minimize(x)
        assert solve(m).status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x", 0, float("inf"))
        m.maximize(x)
        assert solve(m).status is SolveStatus.UNBOUNDED

    def test_optimal_has_zero_gap(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        s = solve(m)
        assert s.gap == 0.0

    def test_solution_bookkeeping(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        s = solve(m)
        assert s.lp_solves >= 1
        assert s.wall_time_s >= 0
        assert s.value(x) == 0.0


class TestHardKnapsack:
    def test_larger_knapsack_exact(self):
        # Compare against brute force.
        import itertools

        weights = [5, 7, 4, 3, 8, 6, 9, 2]
        values = [10, 13, 7, 5, 16, 11, 17, 3]
        cap = 17
        best = max(
            sum(v for v, pick in zip(values, picks) if pick)
            for picks in itertools.product((0, 1), repeat=8)
            if sum(w for w, pick in zip(weights, picks) if pick) <= cap
        )
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(8)]
        m.add_constr(
            LinExpr.total(w * x for w, x in zip(weights, xs)) <= cap
        )
        m.maximize(LinExpr.total(v * x for v, x in zip(values, xs)))
        s = solve(m)
        assert s.objective == pytest.approx(best)

    def test_bin_packing_min_bins(self):
        # 4 items of size 0.6 into bins of size 1.0 -> 4 bins;
        # mix with 0.4 items -> pairs fit.
        sizes = [0.6, 0.6, 0.4, 0.4]
        num_bins = 4
        m = Model()
        x = {
            (i, b): m.add_binary(f"x{i}_{b}")
            for i in range(len(sizes))
            for b in range(num_bins)
        }
        used = [m.add_binary(f"u{b}") for b in range(num_bins)]
        for i in range(len(sizes)):
            m.add_constr(
                LinExpr.total(x[(i, b)] for b in range(num_bins)) == 1
            )
        for b in range(num_bins):
            m.add_constr(
                LinExpr.total(
                    sizes[i] * x[(i, b)] for i in range(len(sizes))
                )
                <= used[b]
            )
        m.minimize(LinExpr.total(used))
        s = solve(m)
        assert s.objective == pytest.approx(2)


class TestLimits:
    def test_time_limit_returns_quickly(self):
        import time

        m = Model()
        # A deliberately awkward model: many symmetric binaries.
        xs = [m.add_binary(f"x{i}") for i in range(40)]
        m.add_constr(LinExpr.total(xs) == 20)
        m.minimize(
            LinExpr.total((1 + 0.001 * i) * x for i, x in enumerate(xs))
        )
        start = time.perf_counter()
        solver = BranchBoundSolver(time_limit_s=0.5)
        s = solver.solve(m)
        assert time.perf_counter() - start < 10
        assert s.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.TIME_LIMIT,
        )

    def test_rejects_bad_time_limit(self):
        with pytest.raises(ValueError):
            BranchBoundSolver(time_limit_s=0)

    def test_node_limit(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(30)]
        m.add_constr(LinExpr.total(xs) == 15)
        m.minimize(LinExpr.total((1 + 0.01 * i) * x for i, x in enumerate(xs)))
        solver = BranchBoundSolver(node_limit=3)
        s = solver.solve(m)
        assert s.nodes_explored <= 3


class TestWeakRelaxations:
    def test_min_indicator_objective_finds_incumbent(self):
        # min sum(occ) with occ >= x and coverage constraints: LP sits
        # on a fractional plateau; the dive must still find a solution.
        m = Model()
        items = range(12)
        bins = range(3)
        x = {
            (i, b): m.add_binary(f"x{i}_{b}") for i in items for b in bins
        }
        occ = {b: m.add_binary(f"occ{b}") for b in bins}
        for i in items:
            m.add_constr(LinExpr.total(x[(i, b)] for b in bins) == 1)
        for b in bins:
            for i in items:
                m.add_constr(occ[b] >= x[(i, b)])
            m.add_constr(
                LinExpr.total(0.3 * x[(i, b)] for i in items) <= 2.0
            )
        m.minimize(LinExpr.total(occ.values()))
        s = BranchBoundSolver(time_limit_s=20).solve(m)
        assert s.status.has_solution
        assert s.objective == pytest.approx(2)  # 12*0.3=3.6 needs 2 bins
