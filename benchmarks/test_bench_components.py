"""Micro-benchmarks of the substrate components.

Not a paper figure — these track the performance of the pieces the
experiments are built on (analyzer, splitter, MILP solver, path
enumeration, DES) so regressions are visible independently of the
end-to-end numbers.
"""

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import split_tdg
from repro.milp.expr import LinExpr
from repro.milp.model import Model
from repro.milp.branch_bound import BranchBoundSolver
from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.network.topozoo import topology_zoo_wan
from repro.simulation.flow import Flow
from repro.simulation.netsim import FlowSimulator, uniform_path
from repro.workloads.synthetic import synthetic_programs


def test_bench_program_analysis(benchmark):
    programs = synthetic_programs(50, seed=7)
    tdg = benchmark(ProgramAnalyzer().analyze, programs)
    assert len(tdg) > 100


def test_bench_tdg_split(benchmark):
    programs = synthetic_programs(50, seed=7)
    tdg = ProgramAnalyzer().analyze(programs)
    reference = Switch("ref")
    segments = benchmark(split_tdg, tdg, reference)
    assert segments


def test_bench_path_enumeration(benchmark):
    network = topology_zoo_wan(1)
    names = network.programmable_names()

    def enumerate_pairs():
        paths = PathEnumerator(network, k=3)
        total = 0
        for u in names[:10]:
            for v in names[:10]:
                if u != v:
                    total += len(paths.paths(u, v))
        return total

    assert benchmark(enumerate_pairs) > 0


def test_bench_milp_knapsack(benchmark):
    def build_and_solve():
        model = Model("knap")
        weights = [5, 7, 4, 3, 8, 6, 9, 2, 5, 4, 7, 3]
        values = [10, 13, 7, 5, 16, 11, 17, 3, 9, 8, 12, 6]
        xs = [model.add_binary(f"x{i}") for i in range(len(weights))]
        model.add_constr(
            LinExpr.total(w * x for w, x in zip(weights, xs)) <= 26
        )
        model.maximize(
            LinExpr.total(v * x for v, x in zip(values, xs))
        )
        return BranchBoundSolver(time_limit_s=30).solve(model)

    solution = benchmark(build_and_solve)
    assert solution.status.has_solution


def test_bench_des_throughput(benchmark):
    simulator = FlowSimulator(uniform_path(5))
    flow = Flow(1, message_bytes=1024 * 2000, packet_payload_bytes=1024)
    metrics = benchmark.pedantic(
        simulator.run, args=(flow,), rounds=3, iterations=1
    )
    assert metrics.num_packets == 2000


def test_bench_dataflow_verification(benchmark):
    from repro.core.heuristic import GreedyHeuristic
    from repro.core.verification import verify_dataflow
    from repro.workloads.switchp4 import real_programs

    programs = real_programs(10) + synthetic_programs(40, seed=7)
    tdg = ProgramAnalyzer().analyze(programs)
    network = topology_zoo_wan(1)
    plan = GreedyHeuristic().deploy(tdg, network)

    report = benchmark(verify_dataflow, plan)
    assert report.rounds >= 1
    assert len(report.execution_order) == len(tdg)


def test_bench_interpreter_packet_rate(benchmark):
    from repro.core import Hermes
    from repro.simulation.interpreter import PlanInterpreter
    from repro.workloads.switchp4 import real_programs

    plan = Hermes().deploy(
        real_programs(10),
        topology_zoo_wan(2),
    ).plan
    interpreter = PlanInterpreter(plan)
    packet = {
        "ipv4.src_addr": 0x0A000001,
        "ipv4.dst_addr": 0x0A000002,
        "ipv4.protocol": 6,
        "tcp.src_port": 1234,
        "tcp.dst_port": 80,
        "ethernet.src_addr": 1,
        "ethernet.dst_addr": 2,
        "vlan.vid": 1,
        "ipv4.dscp": 0,
        "udp.dst_port": 4789,
        "tcp.flags": 2,
    }

    def run_burst():
        for i in range(100):
            interpreter.run_packet(dict(packet, **{"tcp.src_port": i}))

    benchmark.pedantic(run_burst, rounds=3, iterations=1)
