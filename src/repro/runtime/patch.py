"""The reconciler's timeout fallback: a cheapest feasible local patch.

The normal replan path re-runs the global heuristic — deliberately, as
:mod:`repro.control.migration` explains, because a local patch can
strand heavy-metadata edges across the patch boundary and lose the
byte-overhead guarantee.  But a reconciler under a hard time budget
needs *some* valid plan now; :func:`cheapest_patch` is that degraded
mode.  It keeps every surviving placement exactly where it is, re-homes
only the orphaned MATs (those whose old host vanished or stopped being
able to host), greedily choosing for each orphan the feasible
(switch, stages) spot that adds the fewest cross-switch bytes, and
rebuilds the routing over latency-shortest paths on the current
network.  The result validates against every paper constraint; its
``A_max`` is merely not guaranteed to be minimal — exactly the
trade the time budget asked for.

The stage-fitting primitives (window search, capacity accounting,
neighbor reachability) are shared with the warm replanning splice and
live in :mod:`repro.plan.splice`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.network.paths import PathEnumerator
from repro.network.switch import Switch
from repro.network.topology import Network
from repro.plan.artifact import (
    DeploymentError,
    DeploymentPlan,
    MatPlacement,
)
from repro.plan.splice import (
    cross_bytes as _cross_bytes,
    fit_stages,
    free_capacity as _free_capacity,
    neighbors_reachable as _neighbors_reachable,
    stage_window as _stage_window,
)
from repro.tdg.graph import Tdg


def cheapest_patch(
    old_plan: DeploymentPlan,
    network: Network,
    paths: Optional[PathEnumerator] = None,
) -> DeploymentPlan:
    """Re-home only the MATs whose old host can no longer serve.

    Args:
        old_plan: The currently active plan (its TDG must still be the
            live workload; the caller falls back to a full replan when
            the workload changed).
        network: The current substrate.
        paths: Optional shared path enumerator for ``network``.

    Returns:
        A validated plan with minimal placement churn.

    Raises:
        DeploymentError: If some orphan fits on no surviving switch.
    """
    tdg = old_plan.tdg
    paths = paths or PathEnumerator(network)
    hostable = {
        s.name: s for s in network.programmable_switches()
    }
    if not hostable:
        raise DeploymentError("patch: no programmable switches survive")

    surviving: Dict[str, MatPlacement] = {}
    orphans: List[str] = []
    for name, placement in old_plan.placements.items():
        host = hostable.get(placement.switch)
        if host is not None and placement.last_stage <= host.num_stages:
            surviving[name] = placement
        else:
            orphans.append(name)
    if not orphans:
        # Nothing to re-home; only the routing may need repair.
        return _routed(tdg, network, surviving, paths)

    free = _free_capacity(tdg, hostable, surviving)
    placements = dict(surviving)
    for name in tdg.topological_order():
        if name not in set(orphans):
            continue
        placements[name] = _place_orphan(
            tdg, name, hostable, free, placements, paths
        )
    plan = _routed(tdg, network, placements, paths)
    plan.validate()
    return plan


def _place_orphan(
    tdg: Tdg,
    name: str,
    hostable: Dict[str, Switch],
    free: Dict[str, List[float]],
    placements: Dict[str, MatPlacement],
    paths: PathEnumerator,
    tol: float = 1e-9,
) -> MatPlacement:
    """The cheapest feasible spot for one orphaned MAT.

    Candidates are scored by the metadata bytes the placement sends
    across switch boundaries (lower is cheaper); reachability of every
    already-placed neighbor is required so routing stays closed.  Ties
    break on the switch name, keeping the patch deterministic.
    """
    mat = tdg.node(name)
    best: Optional[Tuple[int, str, MatPlacement]] = None
    for switch_name in sorted(hostable):
        switch = hostable[switch_name]
        window = _stage_window(tdg, name, switch_name, switch, placements)
        if window is None:
            continue
        lo, hi = window
        stages = fit_stages(
            mat.resource_demand, free[switch_name], lo, hi, tol
        )
        if stages is None:
            continue
        cost = _cross_bytes(tdg, name, switch_name, placements)
        if not _neighbors_reachable(tdg, name, switch_name, placements, paths):
            continue
        candidate = MatPlacement(name, switch_name, stages)
        if best is None or (cost, switch_name) < (best[0], best[1]):
            best = (cost, switch_name, candidate)
    if best is None:
        raise DeploymentError(
            f"patch: orphaned MAT {name!r} fits on no surviving switch"
        )
    placement = best[2]
    share = mat.resource_demand / len(placement.stages)
    for stage in placement.stages:
        free[placement.switch][stage - 1] -= share
    return placement


def _routed(
    tdg: Tdg,
    network: Network,
    placements: Dict[str, MatPlacement],
    paths: PathEnumerator,
) -> DeploymentPlan:
    """A plan over ``placements`` routed on latency-shortest paths."""
    plan = DeploymentPlan(tdg, network, placements)
    routing = {}
    for pair in plan.pair_metadata_bytes():
        path = paths.shortest(*pair)
        if path is None:
            raise DeploymentError(
                f"patch: communicating pair {pair} is disconnected"
            )
        routing[pair] = path
    return plan.with_routing(routing)
