"""Intra-switch stage assignment.

Once the global optimization decides *which switch* hosts each MAT, the
MATs on one switch must be laid out on its pipeline stages such that

* every dependency ``(a, b)`` satisfies ``rho_end(a) < rho_begin(b)``
  (constraint (8)), and
* no stage's resource load exceeds ``C_res`` (constraint (9)).

This is the classic TDG-to-pipeline layout problem (Jose et al.); we
use level-based list scheduling: process MATs in topological order,
start each at the earliest stage after all its predecessors, and let a
MAT whose demand exceeds one stage's remaining capacity span several
consecutive stages (the paper's ``R(a, i, u)`` spreading).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.deployment import MatPlacement
from repro.network.switch import Switch
from repro.tdg.graph import Tdg


class StageAssignmentError(ValueError):
    """The MATs cannot be laid out on the switch's pipeline."""


def earliest_window(
    free: List[float],
    demand: float,
    earliest: int,
    num_stages: int,
    tol: float = 1e-9,
) -> Optional[Tuple[int, int]]:
    """Earliest-finishing stage window able to host ``demand``.

    Returns 1-based ``(start, end)`` such that every stage in the window
    has at least ``demand / window_size`` free capacity, preferring the
    smallest end stage (keeps dependency chains short), then the fewest
    stages.  ``free`` is 0-indexed remaining capacity per stage.

    Shared by the intra-switch layout below and the virtual-pipeline
    chain scheduler in :mod:`repro.baselines.base` — both must pick
    windows by the same rule so a segment that fits on one switch fits
    identically when that switch appears in a chain.
    """
    for end in range(earliest, num_stages + 1):
        for size in range(1, end - earliest + 2):
            start = end - size + 1
            if start < earliest:
                continue
            share = demand / size
            if all(free[s - 1] + tol >= share for s in range(start, end + 1)):
                return start, end
    return None


def assign_stages(
    segment: Tdg,
    switch: Switch,
    order: Optional[Iterable[str]] = None,
) -> Dict[str, MatPlacement]:
    """Lay out every MAT of ``segment`` on ``switch``'s pipeline.

    Args:
        segment: The TDG segment to place (all of it goes on this
            switch).
        switch: The hosting switch; must be programmable.
        order: Optional explicit processing order; defaults to a
            topological order of the segment.

    Returns:
        MAT name -> :class:`MatPlacement` with 1-based stage tuples.

    Raises:
        StageAssignmentError: If a MAT cannot fit after its
            predecessors within ``switch.num_stages`` stages.
    """
    if not switch.programmable:
        raise StageAssignmentError(
            f"switch {switch.name!r} is not programmable"
        )
    topo = list(order) if order is not None else segment.topological_order()
    free = [switch.stage_capacity] * switch.num_stages
    placements: Dict[str, MatPlacement] = {}

    for mat_name in topo:
        mat = segment.node(mat_name)
        earliest = 1
        for pred in segment.predecessors(mat_name):
            pred_placement = placements.get(pred)
            if pred_placement is None:
                raise StageAssignmentError(
                    f"order places {mat_name!r} before its predecessor "
                    f"{pred!r}"
                )
            earliest = max(earliest, pred_placement.last_stage + 1)
        if earliest > switch.num_stages:
            raise StageAssignmentError(
                f"MAT {mat_name!r} needs a stage after "
                f"{earliest - 1}, but switch {switch.name!r} has only "
                f"{switch.num_stages} stages"
            )
        window = earliest_window(
            free, mat.resource_demand, earliest, switch.num_stages
        )
        if window is None:
            raise StageAssignmentError(
                f"MAT {mat_name!r} (demand {mat.resource_demand:.3f}) "
                f"does not fit on switch {switch.name!r} from stage "
                f"{earliest}"
            )
        start, end = window
        size = end - start + 1
        share = mat.resource_demand / size
        for stage in range(start, end + 1):
            free[stage - 1] -= share
        placements[mat_name] = MatPlacement(
            mat_name, switch.name, tuple(range(start, end + 1))
        )
    return placements


def segment_fits(segment: Tdg, switch: Switch) -> bool:
    """Whether a segment can be fully laid out on one switch.

    Used by the greedy heuristic's split test: a segment "satisfies
    switch resource limitations" when an actual stage layout exists —
    a stronger, sound version of the paper's aggregate test
    ``sum R(a) <= C_stage * C_res`` (which ignores dependency depth).
    """
    if not switch.programmable:
        return False
    if segment.total_resource_demand() > switch.total_capacity:
        return False
    try:
        assign_stages(segment, switch)
    except StageAssignmentError:
        return False
    return True
