#!/usr/bin/env python3
"""In-band network telemetry on a fat-tree.

INT is the paper's second motivating scenario: telemetry MATs stamp
timestamps, switch IDs and queue depths onto packets — Table I's
heaviest metadata.  This example deploys the INT program together with
routing and measurement programs on a k=4 fat-tree, shows which
telemetry fields end up crossing switches, and quantifies what those
bytes cost a 1 MB RPC.

Run:  python examples/int_telemetry.py
"""

from repro.core import CoordinationAnalysis, Hermes
from repro.network import fat_tree
from repro.simulation import Flow, FlowSimulator, normalized_against, uniform_path
from repro.workloads.switchp4 import (
    ecmp_lb,
    heavy_hitter,
    int_telemetry,
    l3_routing,
)


def main() -> None:
    programs = [int_telemetry(), l3_routing(), ecmp_lb(), heavy_hitter()]
    network = fat_tree(4)
    print(
        f"deploying {[p.name for p in programs]} on {network.name} "
        f"({network.num_switches} switches)\n"
    )

    result = Hermes().deploy(programs, network)
    plan = result.plan
    print(
        f"placed {len(plan.placements)} MATs on "
        f"{plan.num_occupied_switches()} switches; "
        f"A_max = {plan.max_metadata_bytes()} B"
    )

    coordination = CoordinationAnalysis(plan)
    for (u, v), channel in sorted(coordination.channels.items()):
        fields = ", ".join(channel.field_names)
        print(f"  {u} -> {v}: {channel.declared_bytes:3d} B  [{fields}]")

    # What the telemetry bytes cost a 1 MB RPC across the fabric.
    overhead = plan.max_metadata_bytes()
    path = uniform_path(5, rate_gbps=100.0, latency_us=1.0)
    simulator = FlowSimulator(path)
    baseline = simulator.run(Flow(0, 1_000_000, 1024, overhead_bytes=0))
    with_int = simulator.run(Flow(1, 1_000_000, 1024, overhead_bytes=overhead))
    norm = normalized_against(with_int, baseline)
    print(
        f"\n1 MB RPC across 5 hops with {overhead} B of telemetry: "
        f"FCT {norm.fct_increase_pct:+.1f}%, "
        f"goodput {-norm.goodput_decrease_pct:+.1f}%"
    )


if __name__ == "__main__":
    main()
