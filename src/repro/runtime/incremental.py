"""Warm-start incremental replanning: the reconciler's first rung.

A cold replan rebuilds the whole deployment from the current workload
and network — correct, memoryless, and wasteful: most churn events
leave nearly every placement valid.  :class:`IncrementalReplanner`
exploits that.  It classifies the event's blast radius exactly the way
the cheapest-patch fallback does (a placement is *orphaned* when its
host vanished, stopped being programmable, or shrank below the
placement's last stage) and then picks the cheapest sound repair:

* **rebase** — empty blast radius: the old placements carry over
  verbatim and only the routing is re-derived
  (:func:`repro.plan.splice.rebase_plan`).  ``A_max`` depends only on
  placements, so a rebase preserves it *exactly* — this rung is
  byte-equivalent to a full replan whose optimizer would keep the same
  placements, and it costs microseconds.
* **delta** — small blast radius: the orphans are re-homed by the
  restricted MILP (:class:`repro.core.delta.DeltaFormulation`) and the
  solution spliced into the surviving placements
  (:func:`repro.plan.splice.splice_plan`) under the model's own
  ``A_max`` prediction as a probe cap.

Anything else raises :class:`IncrementalEscalation` and the reconciler
falls through to the cold rungs: a changed workload (the old plan's TDG
is no longer the live workload, so neither rebase nor splice is sound),
a blast radius above ``max_blast_fraction`` (the delta abstraction
stops being cheaper or tighter than a cold solve), or any
``DeploymentError`` out of the rebase / delta / splice machinery.

The replanner is stateful on purpose: one instance serves a whole
scenario, so consecutive delta solves share the
:class:`~repro.milp.presolve.PresolveCache` sitting inside its
:class:`DeltaFormulation`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.delta import DeltaFormulation
from repro.dataplane.program import Program
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError, DeploymentPlan
from repro.plan.splice import rebase_plan, splice_plan
from repro.telemetry import emit

#: The repair modes :meth:`IncrementalReplanner.replan` can return.
MODE_REBASE = "rebase"
MODE_DELTA = "delta"


class IncrementalEscalation(DeploymentError):
    """The incremental rung refuses; the caller must replan cold.

    Attributes:
        reason: Machine-readable escalation cause — one of
            ``"workload_changed"``, ``"blast_fraction"``,
            ``"rebase_failed"``, ``"delta_failed"``.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


def same_workload(
    old_plan: DeploymentPlan, programs: Sequence[Program]
) -> bool:
    """Whether ``programs`` still matches the plan's deployed MAT set.

    MAT names in the merged TDG are ``<program>.<mat>``-qualified, so
    comparing program-name prefixes is sufficient and cheap.
    """
    deployed = {name.split(".", 1)[0] for name in old_plan.placements}
    return deployed == {p.name for p in programs}


def find_orphans(
    old_plan: DeploymentPlan, network: Network
) -> List[str]:
    """Placements whose old host can no longer serve them.

    The same predicate :func:`repro.runtime.patch.cheapest_patch` uses:
    the host is gone, no longer programmable, or its pipeline shrank
    below the placement's last stage.  Order follows the plan's
    placement mapping for determinism.
    """
    hostable = {s.name: s for s in network.programmable_switches()}
    orphans: List[str] = []
    for name, placement in old_plan.placements.items():
        host = hostable.get(placement.switch)
        if host is None or placement.last_stage > host.num_stages:
            orphans.append(name)
    return orphans


class IncrementalReplanner:
    """Chooses and executes the cheapest sound warm repair.

    Args:
        max_blast_fraction: Orphaned fraction of the placements above
            which the delta mode escalates (the restricted model would
            no longer be small).
        delta: The delta formulation to solve with; defaults to a
            fresh :class:`DeltaFormulation` whose presolve cache then
            persists across this replanner's lifetime.
    """

    def __init__(
        self,
        max_blast_fraction: float = 0.3,
        delta: Optional[DeltaFormulation] = None,
    ) -> None:
        if not 0.0 <= max_blast_fraction <= 1.0:
            raise ValueError("max_blast_fraction must be in [0, 1]")
        self.max_blast_fraction = max_blast_fraction
        self.delta = delta or DeltaFormulation()

    def replan(
        self,
        programs: Sequence[Program],
        network: Network,
        old_plan: DeploymentPlan,
        paths: Optional[PathEnumerator] = None,
    ) -> Tuple[DeploymentPlan, str]:
        """Repair ``old_plan`` onto ``network``; returns (plan, mode).

        ``mode`` is :data:`MODE_REBASE` or :data:`MODE_DELTA`.

        Raises:
            IncrementalEscalation: Whenever a cold replan is the only
                sound continuation; see the module docstring for the
                escalation causes.
        """
        if not same_workload(old_plan, programs):
            raise IncrementalEscalation(
                "workload_changed",
                "incremental: the live workload no longer matches the "
                "old plan's TDG",
            )
        paths = paths or PathEnumerator(network)
        orphans = find_orphans(old_plan, network)
        if not orphans:
            try:
                plan = rebase_plan(old_plan, network, paths)
            except DeploymentError as exc:
                raise IncrementalEscalation(
                    "rebase_failed", f"incremental: rebase failed: {exc}"
                ) from exc
            emit(
                "runtime.replan.incremental",
                mode=MODE_REBASE,
                orphans=0,
                amax_bytes=plan.max_metadata_bytes(),
            )
            return plan, MODE_REBASE
        fraction = len(orphans) / len(old_plan.placements)
        if fraction > self.max_blast_fraction:
            raise IncrementalEscalation(
                "blast_fraction",
                f"incremental: blast radius {len(orphans)}/"
                f"{len(old_plan.placements)} placements exceeds "
                f"max_blast_fraction={self.max_blast_fraction}",
            )
        try:
            assignment = self.delta.solve(
                old_plan.tdg, network, old_plan, orphans, paths
            )
            plan = splice_plan(
                old_plan,
                network,
                assignment,
                paths,
                amax_cap=self.delta.last_predicted_amax,
            )
        except IncrementalEscalation:
            raise
        except DeploymentError as exc:
            raise IncrementalEscalation(
                "delta_failed", f"incremental: delta repair failed: {exc}"
            ) from exc
        emit(
            "runtime.replan.incremental",
            mode=MODE_DELTA,
            orphans=len(orphans),
            predicted_amax_bytes=self.delta.last_predicted_amax,
            amax_bytes=plan.max_metadata_bytes(),
        )
        return plan, MODE_DELTA
