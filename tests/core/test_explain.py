"""Tests for the overhead explainer."""

import pytest

from repro.core import Hermes, explain_overhead
from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import GreedyHeuristic
from repro.network import linear_topology
from tests.conftest import make_sketch_program


@pytest.fixture
def split_plan():
    programs = [make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(4)]
    net = linear_topology(8, num_stages=2, stage_capacity=1.0)
    tdg = ProgramAnalyzer().analyze(programs)
    plan = GreedyHeuristic(refine=False).deploy(tdg, net)
    assert plan.max_metadata_bytes() > 0
    return plan


class TestExplainOverhead:
    def test_amax_matches_plan(self, split_plan):
        report = explain_overhead(split_plan)
        assert report.a_max == split_plan.max_metadata_bytes()
        assert report.worst_pair in split_plan.pair_metadata_bytes()

    def test_edges_sum_to_amax(self, split_plan):
        report = explain_overhead(split_plan)
        assert (
            sum(e.metadata_bytes for e in report.edges) == report.a_max
        )

    def test_counterfactuals_never_increase(self, split_plan):
        report = explain_overhead(split_plan)
        for contribution in report.edges:
            assert contribution.amax_if_internalized <= report.a_max

    def test_attributions_cover_amax(self, split_plan):
        report = explain_overhead(split_plan)
        assert sum(report.by_program.values()) == report.a_max

    def test_zero_overhead_report(self, six_programs, small_line):
        plan = Hermes().deploy(six_programs, small_line).plan
        assert plan.max_metadata_bytes() == 0
        report = explain_overhead(plan)
        assert report.a_max == 0
        assert report.worst_pair is None
        assert "0 B" in report.render()

    def test_render_mentions_pair_and_edges(self, split_plan):
        report = explain_overhead(split_plan)
        text = report.render()
        assert f"{report.worst_pair[0]} -> {report.worst_pair[1]}" in text
        assert "by program" in text

    def test_cli_explain_flag(self, capsys):
        from repro.cli import main

        main(
            [
                "deploy",
                "--workload",
                "sketches:4",
                "--topology",
                "linear:2",
                "--explain",
            ]
        )
        assert "A_max" in capsys.readouterr().out
