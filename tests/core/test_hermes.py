"""Unit tests for the Hermes facade."""

import pytest

from repro.core.hermes import Hermes, HermesResult, MODE_HEURISTIC, MODE_OPTIMAL


class TestHermes:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Hermes(mode="quantum")

    def test_heuristic_deploy(self, six_programs, small_line):
        result = Hermes().deploy(six_programs, small_line)
        assert isinstance(result, HermesResult)
        assert result.mode == MODE_HEURISTIC
        result.plan.validate()
        assert result.overhead_bytes == result.plan.max_metadata_bytes()
        assert result.total_time_s >= result.solve_time_s

    def test_optimal_deploy(self, six_programs, small_line):
        result = Hermes(mode=MODE_OPTIMAL, time_limit_s=60).deploy(
            six_programs, small_line
        )
        assert result.mode == MODE_OPTIMAL
        result.plan.validate()

    def test_analyze_only(self, six_programs):
        tdg = Hermes().analyze(six_programs)
        assert len(tdg) == sum(len(p) for p in six_programs)

    def test_deploy_tdg_separately(self, six_programs, small_line):
        hermes = Hermes()
        tdg = hermes.analyze(six_programs)
        plan, solve_time = hermes.deploy_tdg(tdg, small_line)
        plan.validate()
        assert solve_time >= 0

    def test_epsilon2_threaded_through(self, six_programs, small_line):
        result = Hermes(epsilon2=2).deploy(six_programs, small_line)
        assert result.plan.num_occupied_switches() <= 2

    def test_merge_flag_threaded_through(self):
        from repro.workloads.sketches import sketch_programs

        programs = sketch_programs(3)
        merged = Hermes(merge=True).analyze(programs)
        unmerged = Hermes(merge=False).analyze(programs)
        assert len(merged) < len(unmerged)
