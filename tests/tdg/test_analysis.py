"""Unit tests for metadata-size analysis (Algorithm 1)."""

import pytest

from repro.dataplane.actions import Action, ActionPrimitive, modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.tdg.analysis import annotate_metadata_sizes, edge_metadata_bytes
from repro.tdg.builder import build_tdg
from repro.tdg.dependencies import DependencyType
from repro.dataplane.program import Program


META4 = metadata_field("m.four", 32)
META6 = metadata_field("m.six", 48)
HDR = header_field("ipv4.src", 32)


class TestEdgeMetadataBytes:
    def test_match_counts_upstream_metadata_writes(self):
        up = Mat("u", actions=[modify(META4), modify(META6)])
        down = Mat("d", match_fields=[META4], actions=[no_op()])
        assert (
            edge_metadata_bytes(up, down, DependencyType.MATCH) == 4 + 6
        )

    def test_match_ignores_header_writes(self):
        up = Mat("u", actions=[modify(HDR), modify(META4)])
        down = Mat("d", match_fields=[META4], actions=[no_op()])
        assert edge_metadata_bytes(up, down, DependencyType.MATCH) == 4

    def test_action_counts_union(self):
        up = Mat("u", actions=[modify(META4)])
        down = Mat("d", actions=[modify(META4), modify(META6)])
        assert (
            edge_metadata_bytes(up, down, DependencyType.ACTION) == 4 + 6
        )

    def test_reverse_is_free(self):
        up = Mat("u", match_fields=[META4], actions=[no_op()])
        down = Mat("d", actions=[modify(META4)])
        assert edge_metadata_bytes(up, down, DependencyType.REVERSE) == 0

    def test_successor_counts_upstream_writes(self):
        up = Mat("u", actions=[modify(META6)])
        down = Mat("d", match_fields=[HDR], actions=[no_op()])
        assert edge_metadata_bytes(up, down, DependencyType.SUCCESSOR) == 6

    def test_header_only_edge_is_free(self):
        up = Mat("u", actions=[modify(HDR)])
        down = Mat("d", match_fields=[HDR], actions=[no_op()])
        assert edge_metadata_bytes(up, down, DependencyType.MATCH) == 0


class TestAnnotate:
    def test_annotates_in_place_and_returns_graph(self, sketch_program):
        tdg = build_tdg(sketch_program)
        assert all(e.metadata_bytes == 0 for e in tdg.edges)
        result = annotate_metadata_sizes(tdg)
        assert result is tdg
        edge = tdg.edge("sk.hash", "sk.update")
        assert edge.metadata_bytes == 4  # 32-bit index

    def test_sizes_follow_field_widths(self):
        wide = metadata_field("m.wide", 96)
        up = Mat("u", actions=[modify(wide)])
        down = Mat("d", match_fields=[wide], actions=[no_op()])
        tdg = build_tdg(Program("p", [up, down]))
        annotate_metadata_sizes(tdg)
        assert tdg.edge("p.u", "p.d").metadata_bytes == 12

    def test_idempotent(self, sketch_program):
        tdg = annotate_metadata_sizes(build_tdg(sketch_program))
        before = {e.key: e.metadata_bytes for e in tdg.edges}
        annotate_metadata_sizes(tdg)
        assert {e.key: e.metadata_bytes for e in tdg.edges} == before
