"""Local-search refinement of deployment plans.

Both portfolio constructions (min-cut split and first-fit chain) are
one-shot: once segments are placed, no decision is revisited.  This
pass polishes a finished plan with first-improvement local search on
the objective that actually matters — the per-pair maximum:

repeat up to ``max_moves`` times:
  1. find the worst switch pair ``(u, v)``;
  2. for each TDG edge crossing it (heaviest first), try moving one
     endpoint to the other side;
  3. rebuild the two affected switches' stage layouts; keep the move
     iff the plan stays valid and ``A_max`` strictly drops.

Every accepted move lowers ``A_max`` by at least one byte, so the
search terminates; each trial costs two stage layouts plus one pair
scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.deployment import DeploymentError, DeploymentPlan
from repro.core.stages import StageAssignmentError, assign_stages
from repro.network.paths import Path, PathEnumerator


def _rebuild(
    plan: DeploymentPlan,
    hosts: Dict[str, str],
    paths: PathEnumerator,
) -> Optional[DeploymentPlan]:
    """A full plan from a MAT->switch mapping, or None if infeasible."""
    placements = {}
    by_switch: Dict[str, List[str]] = {}
    for mat_name, switch in hosts.items():
        by_switch.setdefault(switch, []).append(mat_name)
    try:
        for switch, names in by_switch.items():
            segment = plan.tdg.subgraph(names, name=f"ref_{switch}")
            placements.update(
                assign_stages(segment, plan.network.switch(switch))
            )
    except StageAssignmentError:
        return None
    candidate = DeploymentPlan(plan.tdg, plan.network, placements)
    routing: Dict[Tuple[str, str], Path] = {}
    for pair in candidate.pair_metadata_bytes():
        path = paths.shortest(*pair)
        if path is None:
            return None
        routing[pair] = path
    candidate.routing = routing
    try:
        candidate.validate()
    except DeploymentError:  # pragma: no cover - belt and braces
        return None
    # Structural validity is not enough: a move can strand metadata
    # behind a recirculation (produced on a switch's first visit,
    # needed on its second — the PHV does not survive the loop).  Only
    # accept candidates the dataflow verifier can actually execute.
    from repro.core.verification import DataflowError, verify_dataflow

    try:
        verify_dataflow(candidate)
    except DataflowError:
        return None
    return candidate


def refine_plan(
    plan: DeploymentPlan,
    paths: Optional[PathEnumerator] = None,
    max_moves: int = 40,
    max_trials_per_move: int = 24,
) -> DeploymentPlan:
    """Polish ``plan`` with boundary-move local search.

    Args:
        plan: A validated plan; never mutated.
        paths: Shared path cache.
        max_moves: Accepted-move budget.
        max_trials_per_move: Candidate relocations examined per round.

    Returns:
        A plan with ``A_max`` less than or equal to the input's.
    """
    paths = paths or PathEnumerator(plan.network)
    current = plan
    for _round in range(max_moves):
        pairs = current.pair_metadata_bytes()
        if not pairs:
            break
        best_amax = max(pairs.values())
        (u, v), _bytes = max(pairs.items(), key=lambda kv: kv[1])
        crossing = sorted(
            (
                e
                for e in current.tdg.edges
                if current.switch_of(e.upstream) == u
                and current.switch_of(e.downstream) == v
            ),
            key=lambda e: e.metadata_bytes,
            reverse=True,
        )
        hosts = {
            name: placement.switch
            for name, placement in current.placements.items()
        }
        improved = False
        trials = 0
        for edge in crossing:
            if trials >= max_trials_per_move or improved:
                break
            for mat_name, target in (
                (edge.upstream, v),
                (edge.downstream, u),
            ):
                trials += 1
                trial_hosts = dict(hosts)
                trial_hosts[mat_name] = target
                candidate = _rebuild(current, trial_hosts, paths)
                if (
                    candidate is not None
                    and candidate.max_metadata_bytes() < best_amax
                ):
                    current = candidate
                    improved = True
                    break
        if not improved:
            break
    return current
