"""Unit tests for repro.dataplane.fields."""

import pytest

from repro.dataplane.fields import (
    Field,
    FieldKind,
    FieldSet,
    header_field,
    metadata_field,
    standard_headers,
)


class TestField:
    def test_size_rounds_up_to_bytes(self):
        assert Field("f", 1).size_bytes == 1
        assert Field("f", 8).size_bytes == 1
        assert Field("f", 9).size_bytes == 2
        assert Field("f", 48).size_bytes == 6
        assert Field("f", 128).size_bytes == 16

    def test_kind_predicates(self):
        assert header_field("h", 8).is_header
        assert not header_field("h", 8).is_metadata
        assert metadata_field("m", 8).is_metadata
        assert not metadata_field("m", 8).is_header

    def test_default_kind_is_header(self):
        assert Field("f", 8).kind is FieldKind.HEADER

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            Field("", 8)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="positive width"):
            Field("f", 0)
        with pytest.raises(ValueError, match="positive width"):
            Field("f", -4)

    def test_equality_and_hash(self):
        assert metadata_field("m", 32) == metadata_field("m", 32)
        assert hash(metadata_field("m", 32)) == hash(metadata_field("m", 32))
        assert metadata_field("m", 32) != header_field("m", 32)

    def test_ordering_is_by_name(self):
        fields = sorted([Field("b", 8), Field("a", 8)])
        assert [f.name for f in fields] == ["a", "b"]


class TestFieldSet:
    def test_deduplicates_identical_fields(self):
        f = metadata_field("m", 32)
        fs = FieldSet([f, f, f])
        assert len(fs) == 1

    def test_rejects_conflicting_definitions(self):
        with pytest.raises(ValueError, match="conflicting"):
            FieldSet([metadata_field("m", 32), metadata_field("m", 16)])

    def test_contains_by_field_and_name(self):
        f = metadata_field("m", 32)
        fs = FieldSet([f])
        assert f in fs
        assert "m" in fs
        assert "other" not in fs
        assert 42 not in fs

    def test_union_preserves_distinct(self):
        a = FieldSet([metadata_field("a", 8)])
        b = FieldSet([metadata_field("b", 8), metadata_field("a", 8)])
        assert len(a.union(b)) == 2

    def test_intersection(self):
        a = FieldSet([metadata_field("a", 8), metadata_field("b", 8)])
        b = FieldSet([metadata_field("b", 8), metadata_field("c", 8)])
        assert a.intersection(b).names == frozenset({"b"})

    def test_metadata_bytes_ignores_headers(self):
        fs = FieldSet(
            [
                header_field("h", 32),
                metadata_field("m1", 32),
                metadata_field("m2", 48),
            ]
        )
        assert fs.metadata_bytes() == 4 + 6
        assert fs.total_bytes() == 4 + 4 + 6

    def test_metadata_only_filter(self):
        fs = FieldSet([header_field("h", 32), metadata_field("m", 32)])
        assert fs.metadata_only().names == frozenset({"m"})

    def test_empty_set_sums_to_zero(self):
        assert FieldSet().metadata_bytes() == 0
        assert FieldSet().total_bytes() == 0

    def test_equality_is_order_insensitive(self):
        a = FieldSet([metadata_field("a", 8), metadata_field("b", 8)])
        b = FieldSet([metadata_field("b", 8), metadata_field("a", 8)])
        assert a == b
        assert hash(a) == hash(b)

    def test_equality_against_non_fieldset(self):
        assert FieldSet() != "not a fieldset"


class TestStandardHeaders:
    def test_all_entries_are_header_fields(self):
        for field in standard_headers().values():
            assert field.is_header

    def test_common_fields_present_with_sizes(self):
        hdr = standard_headers()
        assert hdr["ipv4.src_addr"].width_bits == 32
        assert hdr["ethernet.dst_addr"].width_bits == 48
        assert hdr["tcp.src_port"].width_bits == 16
        assert hdr["ipv6.src_addr"].size_bytes == 16

    def test_keys_match_field_names(self):
        for name, field in standard_headers().items():
            assert name == field.name
