"""Shared experiment machinery.

The deployment experiments all follow one pattern: build a workload,
build a network, run every framework, record overhead / execution time
/ occupied switches, and (for the end-to-end experiments) translate the
measured overhead into FCT and goodput impact through the flow
simulator.  This module centralizes that pattern so each experiment
module only describes its sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    Ffl,
    Ffls,
    Flightplan,
    HermesHeuristic,
    HermesOptimal,
    MinStage,
    Mtp,
    P4All,
    Sonata,
    Speed,
)
from repro.baselines.base import DeploymentFramework, FrameworkResult
from repro.dataplane.program import Program
from repro.milp.branch_bound import DEFAULT_PROFILE
from repro.network.paths import PathEnumerator
from repro.network.topology import Network
from repro.plan.artifact import DeploymentError
from repro.simulation.engine import get_engine, overhead_impact
from repro.simulation.flow import MIN_PAYLOAD_BYTES  # noqa: F401  (compat)
from repro.simulation.spec import (  # noqa: F401  (re-exported)
    E2E_HOPS,
    E2E_MESSAGE_BYTES,
    SimulationSpec,
    TrafficModel,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner.executor import ExperimentRunner


@dataclass
class DeploymentRecord:
    """One framework's outcome on one deployment problem."""

    framework: str
    overhead_bytes: int
    solve_time_s: float
    timed_out: bool
    occupied_switches: int
    fct_ratio: float = 1.0
    goodput_ratio: float = 1.0
    #: Plan-aware end-to-end metrics: the same normalization evaluated
    #: over the plan's *actual* routed pairs (per-pair hop chains,
    #: per-pair overhead bytes) instead of the scalar-A_max uniform
    #: path.  Equal to the scalar ratios when the plan carries no
    #: routing (or no coordinating pairs worse than A_max).
    plan_fct_ratio: float = 1.0
    plan_goodput_ratio: float = 1.0

    @property
    def solve_time_ms(self) -> float:
        return self.solve_time_s * 1000.0

    @property
    def reported_time_ms(self) -> float:
        """Execution time as the paper plots it: timed-out ILP runs are
        rendered as the off-scale 10^7 ms bar."""
        return 1e7 if self.timed_out else self.solve_time_ms

    def deterministic_fields(self) -> Dict[str, object]:
        """The fields a re-run must reproduce bit-identically.

        ``solve_time_s`` is wall-clock and varies between runs, so the
        parity guarantees (serial vs. parallel vs. cache-warm) are
        stated over everything else.
        """
        return {
            "framework": self.framework,
            "overhead_bytes": self.overhead_bytes,
            "timed_out": self.timed_out,
            "occupied_switches": self.occupied_switches,
            "fct_ratio": self.fct_ratio,
            "goodput_ratio": self.goodput_ratio,
            "plan_fct_ratio": self.plan_fct_ratio,
            "plan_goodput_ratio": self.plan_goodput_ratio,
        }


def default_frameworks(
    ilp_time_limit_s: float = 10.0,
    per_program_ilp_time_limit_s: float = 1.0,
    include_optimal: bool = True,
    solver_profile: str = DEFAULT_PROFILE,
) -> List[DeploymentFramework]:
    """The paper's comparison set, in figure order.

    ``solver_profile`` selects the branch & bound search profile for
    every ILP-backed framework (``"fast"`` or ``"classic"``; see
    :mod:`repro.milp.branch_bound`).  Both profiles are exact, so the
    recorded overheads are identical — only solve times differ.
    """
    frameworks: List[DeploymentFramework] = [
        MinStage(
            time_limit_s=per_program_ilp_time_limit_s,
            solver_profile=solver_profile,
        ),
        Sonata(
            time_limit_s=per_program_ilp_time_limit_s,
            solver_profile=solver_profile,
        ),
        Speed(time_limit_s=ilp_time_limit_s, solver_profile=solver_profile),
        Mtp(time_limit_s=ilp_time_limit_s, solver_profile=solver_profile),
        Flightplan(
            time_limit_s=ilp_time_limit_s, solver_profile=solver_profile
        ),
        P4All(time_limit_s=ilp_time_limit_s, solver_profile=solver_profile),
        Ffl(),
        Ffls(),
        HermesHeuristic(),
    ]
    if include_optimal:
        frameworks.append(
            HermesOptimal(
                time_limit_s=ilp_time_limit_s, solver_profile=solver_profile
            )
        )
    return frameworks


def end_to_end_impact(
    overhead_bytes: int,
    packet_payload_bytes: int = 1024,
    hops: int = E2E_HOPS,
    message_bytes: int = E2E_MESSAGE_BYTES,
) -> Tuple[float, float]:
    """Translate a per-packet overhead into (fct_ratio, goodput_ratio).

    Both flows (with and without metadata) are pushed through the same
    store-and-forward path; ratios are relative to the zero-overhead
    baseline, exactly like Fig. 2's normalization.

    Now a thin wrapper over the spec+engine pipeline
    (:func:`repro.simulation.engine.overhead_impact`); the
    differential tests pin it bit-for-bit to the legacy
    hand-built-flow implementation.
    """
    return overhead_impact(
        overhead_bytes,
        packet_payload_bytes=packet_payload_bytes,
        hops=hops,
        message_bytes=message_bytes,
    )


def plan_end_to_end_impact(
    plan,
    network: Network,
    packet_payload_bytes: int = 1024,
    engine: str = "analytic",
) -> Tuple[float, float]:
    """Plan-aware (fct_ratio, goodput_ratio): worst pair over the
    plan's real routed hop chains and per-pair overhead bytes.

    Falls back to the scalar :func:`end_to_end_impact` of the plan's
    ``A_max`` when the plan carries no routing for a coordinating pair
    (legacy plans deserialized from old caches).
    """
    try:
        spec = SimulationSpec.from_plan(
            plan,
            network,
            traffic=TrafficModel(
                packet_payload_bytes=packet_payload_bytes
            ),
        )
    except DeploymentError:
        return end_to_end_impact(
            plan.max_metadata_bytes(), packet_payload_bytes
        )
    result = get_engine(engine).evaluate(spec)
    return result.fct_ratio, result.goodput_ratio


def run_single_deployment(
    programs: Sequence[Program],
    network: Network,
    framework: DeploymentFramework,
    packet_payload_bytes: int = 1024,
    with_end_to_end: bool = True,
    paths: Optional[PathEnumerator] = None,
    return_plan: bool = False,
):
    """Run one framework on one deployment problem.

    This is the unit of work the parallel runner fans out: everything a
    :class:`DeploymentRecord` needs, independent of every other
    (framework x problem) cell.

    With ``return_plan=True`` the return value is a ``(record,
    plan_document)`` pair, where the plan document is the canonical
    serialization from :meth:`repro.plan.DeploymentPlan.to_dict` — what
    the runner stores alongside the record in its result cache.
    """
    result: FrameworkResult = framework.deploy(programs, network, paths)
    fct_ratio, goodput_ratio = 1.0, 1.0
    plan_fct_ratio, plan_goodput_ratio = 1.0, 1.0
    if with_end_to_end:
        fct_ratio, goodput_ratio = end_to_end_impact(
            result.overhead_bytes, packet_payload_bytes
        )
        plan_fct_ratio, plan_goodput_ratio = plan_end_to_end_impact(
            result.plan, network, packet_payload_bytes
        )
    record = DeploymentRecord(
        framework=framework.name,
        overhead_bytes=result.overhead_bytes,
        solve_time_s=result.solve_time_s,
        timed_out=result.timed_out,
        occupied_switches=result.plan.num_occupied_switches(),
        fct_ratio=fct_ratio,
        goodput_ratio=goodput_ratio,
        plan_fct_ratio=plan_fct_ratio,
        plan_goodput_ratio=plan_goodput_ratio,
    )
    if return_plan:
        return record, result.plan.to_dict()
    return record


def run_deployment_suite(
    programs: Sequence[Program],
    network: Network,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    packet_payload_bytes: int = 1024,
    with_end_to_end: bool = True,
    runner: Optional["ExperimentRunner"] = None,
) -> Dict[str, DeploymentRecord]:
    """Run every framework on one deployment problem.

    Returns framework name -> :class:`DeploymentRecord`.  Without a
    ``runner`` the frameworks run serially in-process, sharing one
    :class:`PathEnumerator` so path caching amortizes.  With a
    :class:`~repro.experiments.runner.ExperimentRunner` the
    (framework x problem) cells fan out across its worker pool and its
    result cache / journal apply; results are identical either way (up
    to wall-clock timings).
    """
    frameworks = (
        list(frameworks) if frameworks is not None else default_frameworks()
    )
    if runner is not None:
        from repro.experiments.runner.executor import Cell

        results = runner.run_cells(
            [
                Cell(
                    programs=tuple(programs),
                    network=network,
                    framework=framework,
                    packet_payload_bytes=packet_payload_bytes,
                    with_end_to_end=with_end_to_end,
                )
                for framework in frameworks
            ]
        )
        return {res.cell.framework.name: res.record for res in results}
    paths = PathEnumerator(network)
    records: Dict[str, DeploymentRecord] = {}
    for framework in frameworks:
        records[framework.name] = run_single_deployment(
            programs,
            network,
            framework,
            packet_payload_bytes=packet_payload_bytes,
            with_end_to_end=with_end_to_end,
            paths=paths,
        )
    return records
