"""Differential test: probe-filtered refine == the legacy refine.

``refine_plan`` screens candidate moves through an incremental
:class:`PlanBuilder` probe before paying for a full rebuild.  The
filter must be *exact*: the probe's ``A_max`` for a candidate host map
equals what the rebuilt plan would report, so the accepted-move
sequence — and therefore the final plan — is identical to the
historical implementation that rebuilt every candidate.  This module
keeps a faithful copy of the legacy loop and checks plan equality on
representative workloads.
"""

import pytest

from repro.core.heuristic import GreedyHeuristic
from repro.core.refine import _rebuild, refine_plan
from repro.network.generators import linear_topology
from repro.network.paths import PathEnumerator
from repro.network.topozoo import topology_zoo_wan
from repro.plan import plan_fingerprint
from repro.workloads.switchp4 import real_programs
from repro.workloads.synthetic import synthetic_programs


def legacy_refine_plan(plan, paths=None, max_moves=40, max_trials_per_move=24):
    """The historical refine loop: full rebuild per candidate move."""
    paths = paths or PathEnumerator(plan.network)
    current = plan
    for _round in range(max_moves):
        pairs = current.pair_metadata_bytes()
        if not pairs:
            break
        best_amax = max(pairs.values())
        (u, v), _bytes = max(pairs.items(), key=lambda kv: kv[1])
        crossing = sorted(
            (
                e
                for e in current.tdg.edges
                if current.switch_of(e.upstream) == u
                and current.switch_of(e.downstream) == v
            ),
            key=lambda e: e.metadata_bytes,
            reverse=True,
        )
        hosts = {
            name: placement.switch
            for name, placement in current.placements.items()
        }
        improved = False
        trials = 0
        for edge in crossing:
            if trials >= max_trials_per_move or improved:
                break
            for mat_name, target in (
                (edge.upstream, v),
                (edge.downstream, u),
            ):
                trials += 1
                trial_hosts = dict(hosts)
                trial_hosts[mat_name] = target
                candidate = _rebuild(current, trial_hosts, paths)
                if (
                    candidate is not None
                    and candidate.max_metadata_bytes() < best_amax
                ):
                    current = candidate
                    improved = True
                    break
        if not improved:
            break
    return current


def unrefined_plan(programs, network):
    from repro.core.analyzer import ProgramAnalyzer

    tdg = ProgramAnalyzer().analyze(programs)
    return GreedyHeuristic(refine=False).deploy(tdg, network)


WORKLOADS = [
    pytest.param(
        lambda: (
            real_programs(6),
            linear_topology(4, num_stages=4, stage_capacity=1.0),
        ),
        id="real6-linear4",
    ),
    pytest.param(
        lambda: (
            real_programs(9),
            linear_topology(8, num_stages=4, stage_capacity=1.0),
        ),
        id="real9-linear8",
    ),
    pytest.param(
        lambda: (
            synthetic_programs(8, seed=7),
            linear_topology(8, num_stages=8, stage_capacity=1.0),
        ),
        id="synthetic8-linear8",
    ),
    pytest.param(
        lambda: (real_programs(10), topology_zoo_wan(5)),
        id="real10-zoo5",
    ),
]


@pytest.mark.parametrize("make", WORKLOADS)
def test_refine_matches_legacy_rebuild_search(make):
    programs, network = make()
    plan = unrefined_plan(programs, network)
    paths = PathEnumerator(network)
    legacy = legacy_refine_plan(plan, paths)
    fast = refine_plan(plan, paths)
    assert dict(fast.placements) == dict(legacy.placements)
    assert set(fast.routing) == set(legacy.routing)
    assert fast.max_metadata_bytes() == legacy.max_metadata_bytes()
    assert plan_fingerprint(fast) == plan_fingerprint(legacy)


def test_refine_never_worsens_amax():
    programs = real_programs(6)
    network = linear_topology(4, num_stages=4, stage_capacity=1.0)
    plan = unrefined_plan(programs, network)
    refined = refine_plan(plan)
    assert refined.max_metadata_bytes() <= plan.max_metadata_bytes()
    refined.validate()
