"""Hermes reproduction: low-overhead inter-switch coordination for
network-wide data plane program deployment (ICDCS 2022).

See :mod:`repro.core` for the deployment framework, and README.md for
the guided tour.
"""

__version__ = "1.0.0"
