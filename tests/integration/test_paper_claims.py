"""Regression tests for the paper's headline claims (reduced scale).

Each test pins one qualitative claim from the evaluation so that any
change that breaks the reproduction's *shape* — not just its code —
fails loudly.
"""

import pytest

from repro.baselines import (
    Ffl,
    Ffls,
    HermesHeuristic,
    HermesOptimal,
    MinStage,
    Speed,
)
from repro.experiments import fig2_motivation
from repro.experiments.exp2_overhead import workload
from repro.experiments.harness import end_to_end_impact
from repro.network.topozoo import topology_zoo_wan
from repro.workloads.sketches import sketch_programs
from repro.network.generators import linear_topology


@pytest.fixture(scope="module")
def scale_results():
    """One mid-scale deployment, every framework class represented."""
    programs = workload(16, seed=7)
    network = topology_zoo_wan(4)
    frameworks = [
        HermesHeuristic(),
        HermesOptimal(time_limit_s=10),
        Ffl(),
        Ffls(),
        MinStage(time_limit_s=0.5),
        Speed(time_limit_s=10),
    ]
    return {
        fw.name: fw.deploy(programs, network) for fw in frameworks
    }


class TestClaim1HermesMinimizesOverhead:
    """§VI: 'Hermes reduces the per-packet byte overhead' vs baselines."""

    def test_beats_first_fit(self, scale_results):
        hermes = scale_results["Hermes"].overhead_bytes
        assert hermes <= scale_results["FFL"].overhead_bytes
        assert hermes <= scale_results["FFLS"].overhead_bytes

    def test_beats_min_stage(self, scale_results):
        assert (
            scale_results["Hermes"].overhead_bytes
            <= scale_results["MS"].overhead_bytes
        )

    def test_meaningful_reduction(self, scale_results):
        """Exp#2 claims up to 34% reduction; demand at least 20% here."""
        hermes = scale_results["Hermes"].overhead_bytes
        worst = max(
            scale_results[name].overhead_bytes for name in ("FFL", "FFLS", "MS")
        )
        assert hermes <= 0.8 * worst


class TestClaim2HeuristicNearOptimal:
    """§VI: 'the heuristic ... makes near-optimal decisions'."""

    def test_on_testbed_scale_matches_optimal(self):
        from repro.workloads.switchp4 import real_programs

        programs = real_programs(6)
        network = linear_topology(3)
        heuristic = HermesHeuristic().deploy(programs, network)
        optimal = HermesOptimal(time_limit_s=30).deploy(programs, network)
        assert heuristic.overhead_bytes == optimal.overhead_bytes


class TestClaim3HeuristicIsFast:
    """§VI: 'orders-of-magnitude lower execution time'."""

    def test_heuristic_vs_ilp_gap(self, scale_results):
        hermes_t = scale_results["Hermes"].solve_time_s
        speed_t = scale_results["SPEED"].solve_time_s
        assert hermes_t * 10 < speed_t or scale_results["SPEED"].timed_out

    def test_heuristic_subsecond_at_scale(self, scale_results):
        assert scale_results["Hermes"].solve_time_s < 2.0


class TestClaim4OverheadHurtsPerformance:
    """§II-B: overhead inflates FCT and depresses goodput."""

    def test_fig2_direction_and_magnitude(self):
        rows = fig2_motivation.run(packet_sizes=(512,))
        worst = rows[-1]  # 108 bytes
        assert worst.fct_ratio > 1.10
        assert worst.goodput_ratio < 0.90

    def test_end_to_end_consistency(self, scale_results):
        """Deployments with higher overhead must show worse e2e numbers."""
        pairs = sorted(
            (r.overhead_bytes for r in scale_results.values())
        )
        impacts = [end_to_end_impact(ov)[0] for ov in pairs]
        assert impacts == sorted(impacts)


class TestClaim5NoExtraResources:
    """Exp#6: coordination consumes no additional switch resources."""

    def test_sketch_consumption(self):
        programs = sketch_programs(10)
        standalone = sum(p.total_resource_demand for p in programs)
        result = HermesHeuristic().deploy(
            programs, linear_topology(3)
        )
        merged = sum(m.resource_demand for m in result.tdg.mats)
        assert merged <= standalone + 1e-9
