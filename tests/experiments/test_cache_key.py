"""Property tests for the result-cache content hash.

Two directions, both load-bearing for correctness of the cache:

* **Stability** — rebuilding the same deployment problem from scratch
  (fresh ``Program``/``Network``/framework objects, different object
  identities) yields the same key, so re-runs actually hit the cache.
* **Sensitivity** — perturbing anything that can influence a
  ``DeploymentRecord`` (demands, widths, capacities, latencies,
  program order, framework class or configuration, harness params)
  changes the key, so the cache can never serve a stale record for a
  different problem.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import Ffl, Ffls, HermesHeuristic, MinStage
from repro.dataplane.actions import Action, ActionPrimitive
from repro.dataplane.fields import Field, FieldKind
from repro.dataplane.mat import Mat, ResourceDemand
from repro.dataplane.program import Program
from repro.experiments.runner import cache_key
from repro.network.switch import Switch
from repro.network.topology import Link, Network

BASE = dict(
    capacity=256,
    width_bits=16,
    demand=0.25,
    sram_bits=1024,
    latency_ms=1.0,
    stage_capacity=1.0,
    num_stages=4,
    swap_programs=False,
    meta_kind=False,
    payload=1024,
    with_end_to_end=True,
    time_limit=0.5,
)


def build_key(**overrides):
    """Build a full (programs, network, framework, params) cell from
    scalar knobs and return its cache key.  Every call constructs
    fresh objects, so equal keys prove content addressing."""
    p = dict(BASE, **overrides)
    kind = FieldKind.METADATA if p["meta_kind"] else FieldKind.HEADER
    f_match = Field("ipv4.dst", p["width_bits"], kind)
    f_out = Field("meta.port", 9, FieldKind.METADATA)
    mat_a = Mat(
        "route",
        match_fields=(f_match,),
        actions=(
            Action("fwd", ActionPrimitive.FORWARD, writes=(f_out,)),
        ),
        capacity=p["capacity"],
        resource_demand=p["demand"],
        detailed_demand=ResourceDemand(sram_bits=p["sram_bits"]),
    )
    mat_b = Mat(
        "acl",
        match_fields=(f_out,),
        actions=(Action("drop", ActionPrimitive.DROP, reads=(f_out,)),),
        capacity=64,
        resource_demand=0.1,
    )
    programs = [Program("prog_a", [mat_a]), Program("prog_b", [mat_b])]
    if p["swap_programs"]:
        programs.reverse()

    network = Network("key-test")
    for name in ("s1", "s2", "s3"):
        network.add_switch(
            Switch(
                name,
                num_stages=p["num_stages"],
                stage_capacity=p["stage_capacity"],
            )
        )
    network.add_link(Link("s1", "s2", latency_ms=p["latency_ms"]))
    network.add_link(Link("s2", "s3", latency_ms=1.0))

    framework = p.get("framework") or MinStage(time_limit_s=p["time_limit"])
    params = {
        "packet_payload_bytes": p["payload"],
        "with_end_to_end": p["with_end_to_end"],
    }
    return cache_key(programs, network, framework, params)


class TestStability:
    def test_identical_problems_hash_equal(self):
        assert build_key() == build_key()

    def test_key_is_hex_digest(self):
        key = build_key()
        assert len(key) == 64
        assert set(key) <= set(string.hexdigits.lower())

    def test_equivalent_framework_instances_hash_equal(self):
        a = build_key(framework=MinStage(time_limit_s=2.0))
        b = build_key(framework=MinStage(time_limit_s=2.0))
        assert a == b


PERTURBATIONS = [
    ("capacity", dict(capacity=512)),
    ("match_width", dict(width_bits=32)),
    ("field_kind", dict(meta_kind=True)),
    ("resource_demand", dict(demand=0.5)),
    ("detailed_sram", dict(sram_bits=2048)),
    ("link_latency", dict(latency_ms=2.5)),
    ("stage_capacity", dict(stage_capacity=2.0)),
    ("num_stages", dict(num_stages=8)),
    ("program_order", dict(swap_programs=True)),
    ("payload_bytes", dict(payload=256)),
    ("end_to_end_flag", dict(with_end_to_end=False)),
    ("framework_config", dict(time_limit=0.7)),
    ("framework_class", dict(framework=Ffl())),
    (
        "solver_profile",
        dict(framework=MinStage(time_limit_s=0.5, solver_profile="classic")),
    ),
]


class TestSensitivity:
    @pytest.mark.parametrize(
        "overrides", [p[1] for p in PERTURBATIONS], ids=[p[0] for p in PERTURBATIONS]
    )
    def test_any_perturbation_changes_key(self, overrides):
        assert build_key() != build_key(**overrides)

    def test_framework_classes_all_distinct(self):
        keys = {
            build_key(framework=f)
            for f in (
                HermesHeuristic(),
                Ffl(),
                Ffls(),
                MinStage(time_limit_s=0.5),
            )
        }
        assert len(keys) == 4

    def test_perturbations_are_pairwise_distinct(self):
        keys = [build_key()] + [build_key(**p[1]) for p in PERTURBATIONS]
        assert len(set(keys)) == len(keys)


problem_knobs = st.fixed_dictionaries(
    {
        "capacity": st.integers(min_value=1, max_value=4096),
        "width_bits": st.integers(min_value=1, max_value=128),
        "demand": st.floats(
            min_value=0.01, max_value=4.0, allow_nan=False
        ),
        "latency_ms": st.floats(
            min_value=0.0, max_value=50.0, allow_nan=False
        ),
        "num_stages": st.integers(min_value=1, max_value=20),
        "payload": st.integers(min_value=64, max_value=9000),
    }
)


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(problem_knobs)
    def test_rebuild_hashes_equal(self, knobs):
        assert build_key(**knobs) == build_key(**knobs)

    @settings(max_examples=25, deadline=None)
    @given(problem_knobs, problem_knobs)
    def test_distinct_knobs_hash_distinct(self, a, b):
        if a == b:
            assert build_key(**a) == build_key(**b)
        else:
            assert build_key(**a) != build_key(**b)
