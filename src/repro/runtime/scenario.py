"""Churn scenarios: seeded, serializable streams of timed events.

A :class:`Scenario` is the input of the lifecycle runtime — an ordered
stream of :class:`NetworkEvent` records (switch failures/recoveries,
drains, link latency changes, programmability flips, workload
additions/removals) stamped with virtual times.  Scenarios are plain
data: they serialize to a canonical versioned JSON document
(``repro.scenario/v1``) so a churn run can be saved, shared, and
replayed bit-identically (``repro churn replay``), and they embed the
workload and topology specs that produced the initial deployment so a
scenario file is self-contained.

:func:`generate_scenario` draws a valid event stream from a seeded RNG
against a concrete network: it only fails live switches, only recovers
failed ones, only retunes live links, and keeps enough programmable
capacity alive for a re-deployment to stand a chance.  Same seed, same
scenario — the determinism contract the reconciler's plan history
inherits.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.topology import Network

#: Schema identifier embedded in every scenario document.
SCENARIO_SCHEMA = "repro.scenario/v1"
#: Document layout revision within the schema.
SCENARIO_VERSION = 1

#: Separator for link targets ("u|v"); switch names never contain it.
LINK_SEP = "|"


class ScenarioError(ValueError):
    """Raised when a scenario document is malformed or inconsistent."""


class EventKind:
    """The event vocabulary of the lifecycle runtime."""

    SWITCH_FAIL = "switch_fail"
    SWITCH_RECOVER = "switch_recover"
    SWITCH_DRAIN = "switch_drain"
    LINK_LATENCY = "link_latency"
    SET_PROGRAMMABLE = "set_programmable"
    WORKLOAD_ADD = "workload_add"
    WORKLOAD_REMOVE = "workload_remove"

    ALL = (
        SWITCH_FAIL,
        SWITCH_RECOVER,
        SWITCH_DRAIN,
        LINK_LATENCY,
        SET_PROGRAMMABLE,
        WORKLOAD_ADD,
        WORKLOAD_REMOVE,
    )


@dataclass(frozen=True)
class NetworkEvent:
    """One timed lifecycle event.

    Attributes:
        time_s: Virtual event time in seconds (scenarios are sorted).
        kind: One of :class:`EventKind`.
        target: The switch name, ``"u|v"`` link key, or program name
            the event acts on.
        value: Kind-specific payload — new latency in ms for
            ``link_latency``, 0/1 for ``set_programmable``, the
            synthetic-program seed for ``workload_add``.
    """

    time_s: float
    kind: str
    target: str = ""
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EventKind.ALL:
            raise ScenarioError(f"unknown event kind {self.kind!r}")
        if self.time_s < 0:
            raise ScenarioError("event time must be >= 0")

    @property
    def link(self) -> Tuple[str, str]:
        """The (u, v) endpoints of a ``link_latency`` target."""
        u, _, v = self.target.partition(LINK_SEP)
        if not u or not v:
            raise ScenarioError(f"not a link target: {self.target!r}")
        return (u, v)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "target": self.target,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NetworkEvent":
        try:
            return cls(
                data["time_s"], data["kind"], data["target"], data["value"]
            )
        except KeyError as exc:
            raise ScenarioError(f"event missing field {exc}") from exc


@dataclass(frozen=True)
class Scenario:
    """A named, seeded churn scenario.

    Attributes:
        name: Human-readable scenario name.
        seed: The RNG seed the events were drawn with (informational
            for hand-written scenarios).
        workload_spec: CLI workload spec (``real:N`` etc.) for the
            initial deployment — makes the document self-contained.
        topology_spec: CLI topology spec (``wan:N:E:seed`` etc.).
        events: The event stream, sorted by time.
    """

    name: str
    seed: int
    workload_spec: str
    topology_spec: str
    events: Tuple[NetworkEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        times = [e.time_s for e in self.events]
        if times != sorted(times):
            raise ScenarioError("scenario events must be time-sorted")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCENARIO_SCHEMA,
            "version": SCENARIO_VERSION,
            "name": self.name,
            "seed": self.seed,
            "workload_spec": self.workload_spec,
            "topology_spec": self.topology_spec,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario document must be an object, "
                f"got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != SCENARIO_SCHEMA:
            raise ScenarioError(
                f"not a scenario document: schema is {schema!r}, "
                f"expected {SCENARIO_SCHEMA!r}"
            )
        if data.get("version") != SCENARIO_VERSION:
            raise ScenarioError(
                f"unsupported scenario version {data.get('version')!r}"
            )
        try:
            return cls(
                name=data["name"],
                seed=data["seed"],
                workload_spec=data["workload_spec"],
                topology_spec=data["topology_spec"],
                events=tuple(
                    NetworkEvent.from_dict(e) for e in data["events"]
                ),
            )
        except KeyError as exc:
            raise ScenarioError(
                f"scenario missing field {exc}"
            ) from exc

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical serialization."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_scenario(scenario: Scenario, path: str) -> None:
    """Write the scenario document to ``path`` (pretty-printed)."""
    with open(path, "w") as fh:
        json.dump(scenario.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_scenario(path: str) -> Scenario:
    """Load a scenario document written by :func:`write_scenario`."""
    with open(path) as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: not valid JSON: {exc}") from exc
    return Scenario.from_dict(data)


#: Default relative weights of the event kinds drawn by
#: :func:`generate_scenario`.  Failures dominate — they are the
#: operationally interesting case — with a recovery stream that keeps
#: the network from draining to nothing.
DEFAULT_EVENT_MIX: Dict[str, float] = {
    EventKind.SWITCH_FAIL: 4.0,
    EventKind.SWITCH_RECOVER: 2.0,
    EventKind.SWITCH_DRAIN: 1.0,
    EventKind.LINK_LATENCY: 2.0,
    EventKind.SET_PROGRAMMABLE: 1.0,
    EventKind.WORKLOAD_ADD: 1.0,
    EventKind.WORKLOAD_REMOVE: 0.5,
}


def generate_scenario(
    network: Network,
    num_events: int,
    seed: int,
    workload_spec: str = "real:6",
    topology_spec: str = "",
    name: Optional[str] = None,
    event_mix: Optional[Mapping[str, float]] = None,
    mean_gap_s: float = 1.0,
    burst_probability: float = 0.2,
    prefer_programmable: bool = True,
) -> Scenario:
    """Draw a valid seeded event stream against ``network``.

    The generator mirrors the world state as it emits: it only fails
    live switches, recovers only failed ones, drains only live
    programmable ones, and never takes down the last two programmable
    switches (a re-deployment needs somewhere to go).  With probability
    ``burst_probability`` an event lands almost on top of its
    predecessor, exercising the reconciler's debounce policy.

    Args:
        network: The concrete substrate the scenario will run against.
        num_events: How many events to draw.
        seed: RNG seed — same seed, same scenario.
        workload_spec: Embedded workload spec for the initial deploy.
        topology_spec: Embedded topology spec (informational).
        event_mix: Relative kind weights; defaults to
            :data:`DEFAULT_EVENT_MIX`.
        mean_gap_s: Mean virtual-time gap between events.
        burst_probability: Chance the next event is a near-simultaneous
            burst member (gap ``0.01 * mean_gap_s``).
        prefer_programmable: Bias failures toward programmable switches
            (the ones that host MATs, hence force migrations).
    """
    if num_events < 0:
        raise ValueError("num_events must be >= 0")
    rng = random.Random(seed)
    mix = dict(event_mix or DEFAULT_EVENT_MIX)
    kinds = sorted(mix)
    weights = [mix[k] for k in kinds]

    live = set(network.switch_names)
    failed: set = set()
    drained: set = set()
    programmable = {s.name for s in network.programmable_switches()}
    links = sorted(link.key for link in network.links)
    added_programs: List[str] = []
    next_program = 0

    events: List[NetworkEvent] = []
    time_s = 0.0
    while len(events) < num_events:
        if events and rng.random() < burst_probability:
            time_s += 0.01 * mean_gap_s
        else:
            time_s += rng.uniform(0.5, 1.5) * mean_gap_s
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        event = _draw_event(
            rng,
            kind,
            time_s,
            live=live,
            failed=failed,
            drained=drained,
            programmable=programmable,
            links=links,
            added_programs=added_programs,
            next_program=next_program,
            prefer_programmable=prefer_programmable,
        )
        if event is None:
            continue
        if event.kind == EventKind.WORKLOAD_ADD:
            next_program += 1
        events.append(event)
    return Scenario(
        name=name or f"churn-seed{seed}",
        seed=seed,
        workload_spec=workload_spec,
        topology_spec=topology_spec,
        events=tuple(events),
    )


def _hostable(programmable: set, live: set, drained: set) -> set:
    """Switches that could currently host MATs."""
    return (programmable & live) - drained


def _draw_event(
    rng: random.Random,
    kind: str,
    time_s: float,
    *,
    live: set,
    failed: set,
    drained: set,
    programmable: set,
    links: List[Tuple[str, str]],
    added_programs: List[str],
    next_program: int,
    prefer_programmable: bool,
) -> Optional[NetworkEvent]:
    """One event of ``kind`` if the state admits it, else None.

    Mutates the mirrored state sets to match the emitted event.
    """
    if kind == EventKind.SWITCH_FAIL:
        candidates = sorted(live)
        if prefer_programmable:
            preferred = sorted(_hostable(programmable, live, drained))
            if preferred and rng.random() < 0.7:
                candidates = preferred
        # Keep at least two hostable switches alive.
        candidates = [
            s
            for s in candidates
            if len(_hostable(programmable, live - {s}, drained)) >= 2
        ]
        if not candidates:
            return None
        target = rng.choice(candidates)
        live.discard(target)
        failed.add(target)
        return NetworkEvent(time_s, kind, target)
    if kind == EventKind.SWITCH_RECOVER:
        if not failed:
            return None
        target = rng.choice(sorted(failed))
        failed.discard(target)
        drained.discard(target)
        live.add(target)
        return NetworkEvent(time_s, kind, target)
    if kind == EventKind.SWITCH_DRAIN:
        candidates = sorted(_hostable(programmable, live, drained))
        candidates = [
            s
            for s in candidates
            if len(_hostable(programmable, live, drained | {s})) >= 2
        ]
        if not candidates:
            return None
        target = rng.choice(candidates)
        drained.add(target)
        return NetworkEvent(time_s, kind, target)
    if kind == EventKind.LINK_LATENCY:
        live_links = [
            (u, v) for u, v in links if u in live and v in live
        ]
        if not live_links:
            return None
        u, v = rng.choice(live_links)
        latency_ms = round(rng.uniform(1.0, 10.0), 3)
        return NetworkEvent(
            time_s, kind, f"{u}{LINK_SEP}{v}", latency_ms
        )
    if kind == EventKind.SET_PROGRAMMABLE:
        # Flip a switch's programmability, preserving >= 2 hosts.
        off_candidates = sorted(_hostable(programmable, live, drained))
        on_candidates = sorted(live - programmable)
        choices: List[Tuple[str, float]] = []
        if len(off_candidates) > 2:
            choices.append((rng.choice(off_candidates), 0.0))
        if on_candidates:
            choices.append((rng.choice(on_candidates), 1.0))
        if not choices:
            return None
        target, value = rng.choice(choices)
        if value:
            programmable.add(target)
        else:
            programmable.discard(target)
        return NetworkEvent(time_s, kind, target, value)
    if kind == EventKind.WORKLOAD_ADD:
        name = f"churn{next_program}"
        added_programs.append(name)
        return NetworkEvent(
            time_s, kind, name, float(rng.randrange(1, 10_000))
        )
    if kind == EventKind.WORKLOAD_REMOVE:
        if not added_programs:
            return None
        target = added_programs.pop(rng.randrange(len(added_programs)))
        return NetworkEvent(time_s, kind, target)
    raise AssertionError(kind)  # pragma: no cover


def batch_events(
    events: Sequence[NetworkEvent], debounce_s: float
) -> List[List[NetworkEvent]]:
    """Coalesce a time-sorted event stream into debounce batches.

    Consecutive events closer than ``debounce_s`` apart join one batch
    and trigger a single replan (the reconciler's hysteresis);
    ``debounce_s=0`` puts every event in its own batch.
    """
    batches: List[List[NetworkEvent]] = []
    for event in events:
        if (
            batches
            and debounce_s > 0
            and event.time_s - batches[-1][-1].time_s <= debounce_s
        ):
            batches[-1].append(event)
        else:
            batches.append([event])
    return batches
