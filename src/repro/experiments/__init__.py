"""Experiment harness: one module per paper figure/table.

| Module              | Paper artifact                                  |
|---------------------|--------------------------------------------------|
| ``fig2_motivation`` | Fig. 2 — FCT/goodput vs per-packet overhead      |
| ``exp1_testbed``    | Fig. 5 — testbed: overhead/time/FCT/goodput      |
| ``exp2_overhead``   | Fig. 6 — overhead across 10 WAN topologies       |
| ``exp3_exectime``   | Fig. 7 — execution time across 10 WAN topologies |
| ``exp4_endtoend``   | Fig. 8 — end-to-end impact at scale              |
| ``exp5_scalability``| Fig. 9 — scaling the number of programs          |
| ``exp6_resources``  | §VI Exp#6 — switch resource consumption          |
| ``exp7_churn``      | Exp#7 — disruption under churn (beyond paper)    |

Every module exposes a ``run(...)`` returning structured rows and a
``main()`` that prints the paper-style table; all are parameterized so
the benchmark suite can run them at reduced budgets.  Every ``run``
also accepts a ``runner=`` from :mod:`repro.experiments.runner` to fan
the sweep out across a process pool with result caching and a JSONL
telemetry journal.
"""

from repro.experiments.harness import (
    DeploymentRecord,
    default_frameworks,
    end_to_end_impact,
    run_deployment_suite,
    run_single_deployment,
)
from repro.experiments.reporting import Table, format_series

__all__ = [
    "DeploymentRecord",
    "Table",
    "default_frameworks",
    "end_to_end_impact",
    "format_series",
    "run_deployment_suite",
    "run_single_deployment",
]
