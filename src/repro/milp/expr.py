"""Linear expressions over model variables.

A :class:`LinExpr` is an affine function ``sum(coef_i * var_i) + const``.
Expressions support the natural arithmetic operators and comparison
operators that yield :class:`~repro.milp.model.Constraint` objects, so
model-building code reads like the math in the paper:

    model.add_constr(x + 2 * y <= 10)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.milp.model import Constraint, Var

Number = Union[int, float]


class LinExpr:
    """An affine expression ``sum coef * var + constant``."""

    __slots__ = ("coefs", "constant")

    def __init__(
        self,
        coefs: Mapping["Var", float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.coefs: Dict["Var", float] = dict(coefs or {})
        self.constant = float(constant)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_term(var: "Var", coef: float = 1.0) -> "LinExpr":
        return LinExpr({var: float(coef)})

    @staticmethod
    def total(terms: Iterable[Union["LinExpr", "Var", Number]]) -> "LinExpr":
        """Sum an iterable of expressions/variables/numbers.

        Accumulates into one coefficient dict (O(total nonzeros)); the
        operator chain ``a + b + c`` would copy the accumulator at each
        step, which is quadratic and ruinous for the 10^5-term
        expressions deployment models produce.
        """
        from repro.milp.model import Var

        coefs: Dict["Var", float] = {}
        constant = 0.0
        for term in terms:
            if isinstance(term, LinExpr):
                for var, coef in term.coefs.items():
                    coefs[var] = coefs.get(var, 0.0) + coef
                constant += term.constant
            elif isinstance(term, Var):
                coefs[term] = coefs.get(term, 0.0) + 1.0
            elif isinstance(term, (int, float)):
                constant += term
            else:
                raise TypeError(
                    f"cannot sum term of type {type(term).__name__}"
                )
        return LinExpr(coefs, constant)

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coefs), self.constant)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        from repro.milp.model import Var

        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return LinExpr.from_term(other)
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        out = self.copy()
        for var, coef in rhs.coefs.items():
            out.coefs[var] = out.coefs.get(var, 0.0) + coef
        out.constant += rhs.constant
        return out

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (rhs * -1.0)

    def __rsub__(self, other: Union["LinExpr", "Var", Number]) -> "LinExpr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return rhs + (self * -1.0)

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise TypeError(
                "LinExpr supports multiplication by scalars only; "
                "linearize products of variables explicitly"
            )
        return LinExpr(
            {v: c * factor for v, c in self.coefs.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, factor: Number) -> "LinExpr":
        return self * (1.0 / factor)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # ------------------------------------------------------------------
    # Comparisons -> constraints
    # ------------------------------------------------------------------
    def __le__(self, other: Union["LinExpr", "Var", Number]) -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: Union["LinExpr", "Var", Number]) -> "Constraint":
        from repro.milp.model import Constraint, Sense

        return Constraint(self - other, Sense.GE)

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        from repro.milp.model import Constraint, Sense, Var

        if isinstance(other, (LinExpr, Var, int, float)):
            return Constraint(self - other, Sense.EQ)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def value(self, assignment: Mapping["Var", float]) -> float:
        """Evaluate under a variable assignment."""
        return self.constant + sum(
            coef * assignment[var] for var, coef in self.coefs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{c:+g}*{v.name}" for v, c in self.coefs.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
