"""Synthetic program generation (§VI-A).

Paper settings, reproduced exactly:

* per-MAT normalized per-stage resource consumption uniform in
  [10%, 50%];
* 10-20 MATs per program (uniform);
* each (ordered) MAT pair carries a dependency with probability 30%.

A dependency ``(i, j)`` is realized structurally: MAT ``i`` writes a
fresh metadata field that MAT ``j`` matches on — a match dependency
whose byte count is the field's size, drawn from the Table I size
distribution.  Generation is fully seeded.

In addition, programs draw shared *preamble* MATs from a small common
pool (hash/index computations every measurement program needs — the
redundancy §IV's merging exploits).  After SPEED-style merging these
become hub nodes with edges into many programs, so segments can no
longer be split apart for free: exactly the regime where minimizing the
cut bytes (Hermes) beats overhead-oblivious placement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dataplane.actions import Action, ActionPrimitive, no_op
from repro.dataplane.fields import Field, metadata_field, standard_headers
from repro.dataplane.mat import Mat
from repro.dataplane.program import Program
from repro.workloads.metadata_catalog import METADATA_SIZES

_HDR = standard_headers()
_HDR_KEYS = sorted(_HDR)


@dataclass(frozen=True)
class SyntheticConfig:
    """Generator knobs (defaults are the paper's settings)."""

    min_mats: int = 10
    max_mats: int = 20
    dependency_probability: float = 0.30
    min_demand: float = 0.10
    max_demand: float = 0.50
    shared_pool_size: int = 4
    shared_probability: float = 0.6
    shared_attach_probability: float = 0.25

    def __post_init__(self) -> None:
        if not 1 <= self.min_mats <= self.max_mats:
            raise ValueError("need 1 <= min_mats <= max_mats")
        if not 0.0 <= self.dependency_probability <= 1.0:
            raise ValueError("dependency_probability must be in [0, 1]")
        if not 0.0 < self.min_demand <= self.max_demand:
            raise ValueError("need 0 < min_demand <= max_demand")
        if self.shared_pool_size < 0:
            raise ValueError("shared_pool_size must be non-negative")
        if not 0.0 <= self.shared_probability <= 1.0:
            raise ValueError("shared_probability must be in [0, 1]")
        if not 0.0 <= self.shared_attach_probability <= 1.0:
            raise ValueError("shared_attach_probability must be in [0, 1]")


def shared_preamble_pool(config: SyntheticConfig) -> List[Tuple[Mat, Field]]:
    """The common hash/index MATs programs may share.

    Every call returns structurally identical MATs (deterministic
    construction), so instances drawn into different programs are
    redundant to the merger.
    """
    pool: List[Tuple[Mat, Field]] = []
    for k in range(config.shared_pool_size):
        out = metadata_field(f"shared.index{k}", 32)
        mat = Mat(
            f"shared_hash{k}",
            match_fields=[_HDR["ipv4.protocol"]],
            actions=[
                Action(
                    "compute",
                    ActionPrimitive.HASH,
                    reads=(
                        _HDR["ipv4.src_addr"],
                        _HDR["ipv4.dst_addr"],
                    ),
                    writes=(out,),
                )
            ],
            capacity=16,
            resource_demand=0.20,
        )
        pool.append((mat, out))
    return pool


def synthetic_program(
    name: str,
    seed: int,
    config: SyntheticConfig = SyntheticConfig(),
) -> Program:
    """Generate one synthetic program."""
    rng = random.Random(seed)
    num_mats = rng.randint(config.min_mats, config.max_mats)
    sizes = sorted(METADATA_SIZES.values())

    # Shared preamble: which pool MATs this program invokes, and which
    # of its own MATs consume their index fields.
    pool = shared_preamble_pool(config)
    shared: List[Tuple[Mat, Field]] = [
        entry
        for entry in pool
        if rng.random() < config.shared_probability
    ]
    consumes_shared: Dict[int, List[Field]] = {}
    for _mat, out_field in shared:
        for i in range(num_mats):
            if rng.random() < config.shared_attach_probability:
                consumes_shared.setdefault(i, []).append(out_field)

    # Decide the dependency structure first: ordered pairs (i, j), i<j.
    dep_fields: Dict[Tuple[int, int], Field] = {}
    for i in range(num_mats):
        for j in range(i + 1, num_mats):
            if rng.random() < config.dependency_probability:
                size_bytes = rng.choice(sizes)
                dep_fields[(i, j)] = metadata_field(
                    f"{name}.m{i}_to_m{j}", size_bytes * 8
                )

    mats: List[Mat] = [mat for mat, _field in shared]
    for i in range(num_mats):
        writes = [f for (src, _dst), f in dep_fields.items() if src == i]
        reads = [f for (_src, dst), f in dep_fields.items() if dst == i]
        match_fields: List[Field] = list(reads)
        match_fields.extend(consumes_shared.get(i, []))
        # Every MAT also matches a random header field, like real tables.
        match_fields.append(_HDR[rng.choice(_HDR_KEYS)])
        actions: List[Action] = []
        if writes:
            actions.append(
                Action(
                    "produce",
                    ActionPrimitive.MODIFY_FIELD,
                    reads=tuple(reads),
                    writes=tuple(writes),
                )
            )
        else:
            actions.append(no_op("consume"))
        demand = rng.uniform(config.min_demand, config.max_demand)
        mats.append(
            Mat(
                f"m{i}",
                match_fields=match_fields,
                actions=actions,
                capacity=rng.choice((256, 1024, 4096)),
                resource_demand=demand,
            )
        )
    return Program(name, mats)


def synthetic_programs(
    count: int,
    seed: int = 0,
    config: SyntheticConfig = SyntheticConfig(),
    name_prefix: str = "syn",
) -> List[Program]:
    """``count`` seeded synthetic programs (deterministic per seed)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        synthetic_program(f"{name_prefix}{i}", seed * 10_000 + i, config)
        for i in range(count)
    ]
