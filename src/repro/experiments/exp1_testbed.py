"""Exp#1 (Fig. 5): testbed experiments.

The testbed is three Tofino switches in a line with a sender and a
receiver at the edges.  2-10 real programs (switch.p4 feature slices)
are deployed concurrently by every framework; we report, per framework
and program count:

* (a) per-packet byte overhead — the max metadata between any pair of
  testbed switches;
* (b) execution time of the deployment decision;
* (c)/(d) normalized FCT and goodput of a flow crossing the testbed
  carrying that overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.baselines.base import DeploymentFramework
from repro.experiments.harness import (
    DeploymentRecord,
    default_frameworks,
)
from repro.experiments.reporting import Table
from repro.network.generators import linear_topology
from repro.network.topology import Network
from repro.workloads.switchp4 import real_programs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentRunner

#: The paper sweeps 2..10 concurrent programs.
PROGRAM_COUNTS = (2, 4, 6, 8, 10)


def testbed_network() -> Network:
    """Three 32x100G Tofino-like switches in a line (§VI-A)."""
    return linear_topology(3, programmable=True, link_latency_ms=0.001)


@dataclass
class Exp1Point:
    """One (framework, #programs) cell of Fig. 5."""

    num_programs: int
    record: DeploymentRecord


def run(
    program_counts: Sequence[int] = PROGRAM_COUNTS,
    frameworks: Optional[Sequence[DeploymentFramework]] = None,
    packet_payload_bytes: int = 1024,
    runner: Optional["ExperimentRunner"] = None,
) -> List[Exp1Point]:
    """Deploy 2-10 real programs on the 3-switch testbed."""
    from repro.experiments.runner import Cell, execute_cells

    cells: List[Cell] = []
    for count in program_counts:
        programs = tuple(real_programs(count))
        network = testbed_network()
        sweep_frameworks = (
            list(frameworks)
            if frameworks is not None
            else default_frameworks(
                ilp_time_limit_s=20.0, per_program_ilp_time_limit_s=2.0
            )
        )
        for framework in sweep_frameworks:
            cells.append(
                Cell(
                    programs=programs,
                    network=network,
                    framework=framework,
                    packet_payload_bytes=packet_payload_bytes,
                    tag=count,
                )
            )
    return [
        Exp1Point(res.cell.tag, res.record)
        for res in execute_cells(cells, runner)
    ]


def _pivot(
    points: List[Exp1Point], attr: str, title: str, fmt=lambda v: v
) -> Table:
    counts = sorted({p.num_programs for p in points})
    names: List[str] = []
    for p in points:
        if p.record.framework not in names:
            names.append(p.record.framework)
    table = Table(title, ["framework"] + [f"n={c}" for c in counts])
    for name in names:
        row: List = [name]
        for count in counts:
            cell = next(
                p.record
                for p in points
                if p.record.framework == name and p.num_programs == count
            )
            row.append(fmt(getattr(cell, attr)))
        table.add_row(row)
    return table


def main(points: Optional[List[Exp1Point]] = None) -> str:
    """Print Fig. 5(a)-(d) as four tables."""
    points = points if points is not None else run()
    out = [
        _pivot(points, "overhead_bytes", "Fig. 5(a): per-packet byte overhead (B)"),
        _pivot(
            points,
            "reported_time_ms",
            "Fig. 5(b): execution time (ms; 1e7 = exceeded limit)",
        ),
        _pivot(points, "fct_ratio", "Fig. 5(c): normalized FCT"),
        _pivot(points, "goodput_ratio", "Fig. 5(d): normalized goodput"),
        _pivot(
            points,
            "plan_fct_ratio",
            "Fig. 5(c'): plan-aware normalized FCT (routed pairs)",
        ),
        _pivot(
            points,
            "plan_goodput_ratio",
            "Fig. 5(d'): plan-aware normalized goodput (routed pairs)",
        ),
    ]
    output = "\n\n".join(t.render() for t in out)
    print(output)
    return output


if __name__ == "__main__":
    main()
