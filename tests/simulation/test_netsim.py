"""Unit tests for the flow transmission models."""

import pytest

from repro.simulation.flow import Flow
from repro.simulation.metrics import FlowMetrics, normalized_against
from repro.simulation.netsim import (
    FlowSimulator,
    HopSpec,
    analytic_fct,
    uniform_path,
)


class TestHopSpec:
    def test_tx_time(self):
        hop = HopSpec(rate_gbps=100.0)
        # 1250 bytes = 10000 bits at 100 Gbps = 0.1 us
        assert hop.tx_time_us(1250) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            HopSpec(rate_gbps=0)
        with pytest.raises(ValueError):
            HopSpec(latency_us=-1)

    def test_uniform_path(self):
        path = uniform_path(5, rate_gbps=40, latency_us=2)
        assert len(path) == 5
        assert all(h.rate_gbps == 40 for h in path)
        with pytest.raises(ValueError):
            uniform_path(0)


class TestAgreement:
    @pytest.mark.parametrize("overhead", [0, 28, 108])
    @pytest.mark.parametrize("hops", [1, 3, 5])
    def test_des_matches_analytic_on_uniform_packets(self, overhead, hops):
        # message divides evenly into packets -> closed form is exact.
        flow = Flow(
            1,
            message_bytes=1024 * 50,
            packet_payload_bytes=1024,
            overhead_bytes=overhead,
        )
        path = uniform_path(hops)
        des = FlowSimulator(path).run(flow)
        closed = analytic_fct(flow, path)
        assert des.fct_us == pytest.approx(closed.fct_us, rel=1e-9)
        assert des.num_packets == closed.num_packets

    def test_analytic_upper_bounds_des_with_short_tail(self):
        flow = Flow(1, message_bytes=1024 * 10 + 1, packet_payload_bytes=1024)
        path = uniform_path(3)
        des = FlowSimulator(path).run(flow)
        closed = analytic_fct(flow, path)
        assert closed.fct_us >= des.fct_us


class TestBehaviour:
    def test_overhead_increases_fct(self):
        path = uniform_path(5)
        base = analytic_fct(
            Flow(1, 1_000_000, 512, overhead_bytes=0), path
        )
        loaded = analytic_fct(
            Flow(1, 1_000_000, 512, overhead_bytes=108), path
        )
        assert loaded.fct_us > base.fct_us
        assert loaded.goodput_gbps < base.goodput_gbps

    def test_fct_monotone_in_overhead(self):
        path = uniform_path(5)
        fcts = [
            analytic_fct(Flow(1, 500_000, 512, overhead_bytes=ov), path).fct_us
            for ov in (0, 28, 48, 68, 88, 108)
        ]
        assert fcts == sorted(fcts)

    def test_smaller_packets_hurt_more(self):
        path = uniform_path(5)

        def degradation(payload):
            base = analytic_fct(Flow(1, 1_000_000, payload), path)
            loaded = analytic_fct(
                Flow(1, 1_000_000, payload, overhead_bytes=108), path
            )
            return loaded.fct_us / base.fct_us

        assert degradation(512) > degradation(1024) > degradation(1446)

    def test_more_hops_increase_fct(self):
        flow = Flow(1, 100_000, 1024)
        short = analytic_fct(flow, uniform_path(2))
        long = analytic_fct(flow, uniform_path(6))
        assert long.fct_us > short.fct_us

    def test_slow_bottleneck_dominates(self):
        flow = Flow(1, 1_000_000, 1024)
        fast = analytic_fct(flow, uniform_path(3, rate_gbps=100))
        slow_middle = analytic_fct(
            flow,
            [HopSpec(100), HopSpec(10), HopSpec(100)],
        )
        assert slow_middle.fct_us > fast.fct_us


class TestMetrics:
    def test_normalization(self):
        base = FlowMetrics(100.0, 10.0, 5, 1000)
        measured = FlowMetrics(120.0, 8.0, 6, 1200)
        norm = normalized_against(measured, base)
        assert norm.fct_ratio == pytest.approx(1.2)
        assert norm.goodput_ratio == pytest.approx(0.8)
        assert norm.fct_increase_pct == pytest.approx(20.0)
        assert norm.goodput_decrease_pct == pytest.approx(20.0)

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            FlowMetrics(0.0, 1.0, 1, 1)
        with pytest.raises(ValueError):
            FlowMetrics(1.0, 1.0, 0, 1)
