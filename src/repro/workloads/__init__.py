"""Workloads: the programs the evaluation deploys.

* :mod:`repro.workloads.metadata_catalog` — Table I's common metadata;
* :mod:`repro.workloads.switchp4` — ten "real" programs modeled after
  switch.p4 feature slices (the paper's testbed programs);
* :mod:`repro.workloads.sketches` — ten sketch-based measurement
  programs for the SDM scenario (Exp#6);
* :mod:`repro.workloads.synthetic` — the seeded random program
  generator with the paper's §VI-A parameter distribution.
"""

from repro.workloads.metadata_catalog import (
    METADATA_SIZES,
    counter_index,
    queue_lengths,
    switch_identifier,
    timestamps,
)
from repro.workloads.switchp4 import real_programs
from repro.workloads.sketches import sketch_programs
from repro.workloads.synthetic import SyntheticConfig, synthetic_programs

__all__ = [
    "METADATA_SIZES",
    "SyntheticConfig",
    "counter_index",
    "queue_lengths",
    "real_programs",
    "sketch_programs",
    "switch_identifier",
    "synthetic_programs",
    "timestamps",
]
