"""Match rules.

A MAT holds a set of user-specified rules ``R_a`` (bounded by its
capacity ``C_a``).  Each rule describes how to match packets (the match
kind per field), which packets to match (the per-field patterns) and
which of the MAT's actions to run on a hit.

Rules matter to deployment in two ways: the rule *capacity* drives the
memory demand of the MAT (TCAM for ternary/LPM, SRAM for exact), and
rule equality participates in redundancy detection during TDG merging.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dc_field
from typing import Mapping, Optional, Tuple


class MatchKind(enum.Enum):
    """How a field is matched against a rule pattern."""

    EXACT = "exact"
    LPM = "lpm"
    TERNARY = "ternary"
    RANGE = "range"

    @property
    def needs_tcam(self) -> bool:
        """Ternary-capable match kinds are implemented in TCAM."""
        return self in (MatchKind.LPM, MatchKind.TERNARY, MatchKind.RANGE)


@dataclass(frozen=True)
class MatchSpec:
    """One field's match pattern inside a rule.

    Attributes:
        field_name: Which field of the MAT's match key this constrains.
        kind: The match kind.
        value: The match value (integer pattern; semantics depend on
            ``kind``).
        mask_or_prefix: Ternary mask, LPM prefix length or range upper
            bound; ``None`` for exact matches.
    """

    field_name: str
    kind: MatchKind = MatchKind.EXACT
    value: int = 0
    mask_or_prefix: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.field_name:
            raise ValueError("match spec needs a field name")
        if self.kind is MatchKind.EXACT and self.mask_or_prefix is not None:
            raise ValueError("exact match takes no mask/prefix")

    def matches(self, value: int, field_width_bits: int) -> bool:
        """Whether a concrete field ``value`` satisfies this spec."""
        if self.kind is MatchKind.EXACT:
            return value == self.value
        if self.kind is MatchKind.TERNARY:
            mask = self.mask_or_prefix or 0
            return (value & mask) == (self.value & mask)
        if self.kind is MatchKind.LPM:
            prefix = self.mask_or_prefix or 0
            if prefix <= 0:
                return True
            shift = max(field_width_bits - prefix, 0)
            return (value >> shift) == (self.value >> shift)
        if self.kind is MatchKind.RANGE:
            upper = self.mask_or_prefix
            if upper is None:
                raise ValueError("range match needs an upper bound")
            return self.value <= value <= upper
        raise AssertionError(f"unhandled match kind {self.kind}")


@dataclass(frozen=True)
class Rule:
    """A single table entry.

    Attributes:
        matches: Field-name keyed match specs; fields absent from the
            mapping are wildcarded.
        action_name: Which of the MAT's actions fires on a hit.
        priority: Tie-break priority (higher wins), as in TCAM tables.
        action_data: Per-rule action parameters, as (field name, value)
            pairs — the values a MODIFY_FIELD action writes when this
            rule fires (P4 action data).
    """

    matches: Tuple[MatchSpec, ...] = dc_field(default_factory=tuple)
    action_name: str = "no_op"
    priority: int = 0
    action_data: Tuple[Tuple[str, int], ...] = dc_field(
        default_factory=tuple
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "matches", tuple(self.matches))
        object.__setattr__(self, "action_data", tuple(self.action_data))
        names = [m.field_name for m in self.matches]
        if len(names) != len(set(names)):
            raise ValueError(f"rule has duplicate match fields: {names}")

    def action_value(self, field_name: str) -> Optional[int]:
        """The action-data value for a field, if this rule carries one."""
        for name, value in self.action_data:
            if name == field_name:
                return value
        return None

    def spec_for(self, field_name: str) -> Optional[MatchSpec]:
        for spec in self.matches:
            if spec.field_name == field_name:
                return spec
        return None

    def matches_packet(
        self,
        field_values: Mapping[str, int],
        field_widths: Mapping[str, int],
    ) -> bool:
        """Whether a packet (as a field-value mapping) hits this rule.

        Fields missing from ``field_values`` are treated as non-matching
        to keep evaluation conservative.
        """
        for spec in self.matches:
            if spec.field_name not in field_values:
                return False
            width = field_widths.get(spec.field_name, 32)
            if not spec.matches(field_values[spec.field_name], width):
                return False
        return True
