"""Long-lived control plane: the ``repro serve`` daemon and client.

The one-shot CLI re-parses, re-analyzes and re-solves from scratch on
every invocation; this package keeps the control plane *resident*.  A
:class:`~repro.server.service.ReproServer` speaks a small versioned
JSON-lines protocol (:mod:`repro.server.protocol`) over TCP or a Unix
socket; each connection owns a :class:`~repro.server.session.Session`
whose plan history and warm-start state make repeat deploys take the
incremental rebase path instead of a cold solve.  The op bodies live
in :mod:`repro.server.ops`, shared verbatim with the CLI commands —
that sharing is what makes the server/CLI byte differential
(:func:`~repro.server.ops.deterministic_view`) structural.

Layout::

    protocol.py   framing, envelopes, error codes (repro.server/v1)
    ops.py        request -> document op bodies + the differential
    session.py    per-connection state: warm deploys, history, recovery
    service.py    the asyncio daemon (dispatch, pooled cold solves,
                  telemetry streaming)
    client.py     blocking client for --connect mode, scripts, tests
"""

from repro.server.client import ReproClient, ServerError, parse_address
from repro.server.ops import (
    CHURN_DEFAULTS,
    DEPLOY_DEFAULTS,
    OP_FUNCTIONS,
    PLAN_DIFF_DEFAULTS,
    SIMULATE_DEFAULTS,
    OpError,
    churn_doc,
    churn_op,
    deploy_op,
    deterministic_view,
    plan_diff_op,
    resolve_params,
    run_churn,
    simulate_op,
)
from repro.server.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL,
    ProtocolError,
)
from repro.server.service import ReproServer, serve_until_complete
from repro.server.session import Session

__all__ = [
    "CHURN_DEFAULTS",
    "DEPLOY_DEFAULTS",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "OPS",
    "OP_FUNCTIONS",
    "PLAN_DIFF_DEFAULTS",
    "PROTOCOL",
    "OpError",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "Session",
    "churn_doc",
    "churn_op",
    "deploy_op",
    "deterministic_view",
    "parse_address",
    "plan_diff_op",
    "resolve_params",
    "run_churn",
    "serve_until_complete",
    "simulate_op",
]
