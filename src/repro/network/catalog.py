"""Named topology catalog: every topology in the repo by string key.

Suite specs, the CLI and the server all reference topologies as
strings.  Two naming layers resolve here:

* **presets** — fixed, parameterless names for the networks the paper's
  experiments use: ``topozoo-1`` .. ``topozoo-10`` (the Table III zoo),
  ``testbed`` (Exp#1's three-switch Tofino line), ``linear-N`` and
  ``fattree-K`` generator presets;
* **the generator grammar** — parameterized specs ``zoo:ID``,
  ``linear:N``, ``fattree:K`` and ``wan:NODES:EDGES[:SEED]``, shared
  with ``repro --topology`` (the CLI's :func:`repro.cli.parse_topology`
  delegates to :func:`resolve`).

Every resolution is deterministic: the same key always builds the same
network, which is what lets the experiment runner's content-addressed
cache collapse repeated suite cells.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.network.generators import fat_tree, linear_topology, random_wan
from repro.network.topology import Network
from repro.network.topozoo import TABLE_III_TOPOLOGIES, topology_zoo_wan


def _testbed() -> Network:
    """Exp#1's testbed: three Tofino-like switches in a line."""
    return linear_topology(3, programmable=True, link_latency_ms=0.001)


#: Preset name -> (factory, one-line description).
_PRESETS: Dict[str, Tuple[Callable[[], Network], str]] = {
    "testbed": (
        _testbed,
        "3-switch Tofino testbed line (Exp#1, link latency 1 us)",
    ),
}
for _tid, (_nodes, _edges) in sorted(TABLE_III_TOPOLOGIES.items()):
    _PRESETS[f"topozoo-{_tid}"] = (
        # bind the loop variable at definition time
        (lambda tid=_tid: topology_zoo_wan(tid)),
        f"Table III topology {_tid} ({_nodes} nodes, {_edges} edges)",
    )
for _n in (3, 5, 8):
    _PRESETS[f"linear-{_n}"] = (
        (lambda n=_n: linear_topology(n)),
        f"{_n}-switch linear chain",
    )
for _k in (4, 8):
    _PRESETS[f"fattree-{_k}"] = (
        (lambda k=_k: fat_tree(k)),
        f"k={_k} fat-tree (programmable edge/aggregation)",
    )


def catalog_names() -> List[str]:
    """Every preset key, sorted."""
    return sorted(_PRESETS)


def describe(name: str) -> str:
    """One-line description of a preset key."""
    try:
        return _PRESETS[name][1]
    except KeyError:
        raise ValueError(f"unknown topology preset {name!r}") from None


def resolve(spec: str, seed: Optional[int] = None) -> Network:
    """Build the network a catalog key or generator spec names.

    Preset names resolve first; anything else is parsed with the
    generator grammar (``zoo:ID``, ``linear:N``, ``fattree:K``,
    ``wan:NODES:EDGES[:SEED]``).  ``seed`` seeds the random WAN
    generator unless the spec pins its own (``wan:N:E:SEED``).
    """
    preset = _PRESETS.get(spec.strip())
    if preset is not None:
        return preset[0]()
    fields = spec.strip().split(":")
    kind = fields[0]
    if kind == "zoo":
        return topology_zoo_wan(int(fields[1]))
    if kind == "linear":
        return linear_topology(int(fields[1]))
    if kind == "fattree":
        return fat_tree(int(fields[1]))
    if kind == "wan":
        nodes, edges = int(fields[1]), int(fields[2])
        if len(fields) > 3:
            wan_seed = int(fields[3])
        elif seed is not None:
            wan_seed = seed
        else:
            wan_seed = 0
        return random_wan(nodes, edges, seed=wan_seed)
    raise ValueError(f"unknown topology kind {kind!r} in {spec!r}")


__all__ = ["catalog_names", "describe", "resolve"]
