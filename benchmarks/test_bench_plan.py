"""Benchmark: incremental plan probing in the refine loop.

``refine_plan`` screens candidate moves through a
:class:`repro.plan.PlanBuilder` probe — apply the move incrementally,
read ``A_max``, undo — and only rebuilds the candidates the probe
proves improving.  This benchmark keeps a faithful copy of the legacy
loop (full rebuild per candidate) and times both on the Exp#2 golden
family, asserting the refined plans are metric-identical (the probe
filter is exact, so the accepted-move sequences match).

Results are written to ``BENCH_plan.json`` at the repo root so the
refine-loop wall-time contract is auditable across commits.
"""

import json
import os
import time

import pytest

from repro.core.analyzer import ProgramAnalyzer
from repro.core.heuristic import GreedyHeuristic
from repro.core.refine import _rebuild, refine_plan
from repro.experiments.exp2_overhead import workload
from repro.network.paths import PathEnumerator
from repro.network.topozoo import topology_zoo_wan

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_plan.json")

#: Golden Exp#2-family instances: (label, topology id, program count).
#: Sized so the unrefined greedy plan is feasible and the refine loop
#: has real boundary moves to search (A_max > 0).
GOLDEN = [
    ("zoo5/p15", 5, 15),
    ("zoo5/p25", 5, 25),
    ("zoo10/p20", 10, 20),
    ("zoo10/p25", 10, 25),
]

REPS = 3


def legacy_refine_plan(plan, paths, max_moves=40, max_trials_per_move=24):
    """The historical refine loop: full rebuild per candidate move."""
    current = plan
    for _round in range(max_moves):
        pairs = current.pair_metadata_bytes()
        if not pairs:
            break
        best_amax = max(pairs.values())
        (u, v), _bytes = max(pairs.items(), key=lambda kv: kv[1])
        crossing = sorted(
            (
                e
                for e in current.tdg.edges
                if current.switch_of(e.upstream) == u
                and current.switch_of(e.downstream) == v
            ),
            key=lambda e: e.metadata_bytes,
            reverse=True,
        )
        hosts = {
            name: placement.switch
            for name, placement in current.placements.items()
        }
        improved = False
        trials = 0
        for edge in crossing:
            if trials >= max_trials_per_move or improved:
                break
            for mat_name, target in (
                (edge.upstream, v),
                (edge.downstream, u),
            ):
                trials += 1
                trial_hosts = dict(hosts)
                trial_hosts[mat_name] = target
                candidate = _rebuild(current, trial_hosts, paths)
                if (
                    candidate is not None
                    and candidate.max_metadata_bytes() < best_amax
                ):
                    current = candidate
                    improved = True
                    break
        if not improved:
            break
    return current


def _time_best_of(fn, reps=REPS):
    """(best wall seconds, last result) over ``reps`` runs."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def plan_records():
    """Legacy vs probe-filtered refine over every golden instance."""
    records = []
    for label, topology_id, num_programs in GOLDEN:
        tdg = ProgramAnalyzer().analyze(workload(num_programs, seed=7))
        network = topology_zoo_wan(topology_id)
        plan = GreedyHeuristic(refine=False).deploy(tdg, network)
        paths = PathEnumerator(network)
        # Warm the shared path cache so neither variant pays Yen's
        # algorithm inside its timed region.
        legacy_refine_plan(plan, paths)
        legacy_s, legacy_plan = _time_best_of(
            lambda: legacy_refine_plan(plan, paths)
        )
        fast_s, fast_plan = _time_best_of(lambda: refine_plan(plan, paths))
        records.append(
            {
                "instance": label,
                "topology": topology_id,
                "programs": num_programs,
                "unrefined_amax": plan.max_metadata_bytes(),
                "legacy": {
                    "wall_s": round(legacy_s, 4),
                    "amax": legacy_plan.max_metadata_bytes(),
                },
                "fast": {
                    "wall_s": round(fast_s, 4),
                    "amax": fast_plan.max_metadata_bytes(),
                },
                "speedup": round(legacy_s / max(fast_s, 1e-9), 2),
            }
        )
    payload = {
        "instances": records,
        "summary": {
            "instances": len(records),
            "legacy_wall_s_total": round(
                sum(r["legacy"]["wall_s"] for r in records), 4
            ),
            "fast_wall_s_total": round(
                sum(r["fast"]["wall_s"] for r in records), 4
            ),
            "strict_speedups": sum(
                1
                for r in records
                if r["fast"]["wall_s"] < r["legacy"]["wall_s"]
            ),
        },
    }
    with open(_REPORT_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def test_bench_plan_refine_metric_identical(plan_records):
    """The probe filter is exact: same refined A_max everywhere."""
    for record in plan_records["instances"]:
        assert record["fast"]["amax"] == record["legacy"]["amax"], (
            record["instance"]
        )
        assert record["fast"]["amax"] <= record["unrefined_amax"], (
            record["instance"]
        )


def test_bench_plan_refine_is_faster_overall(plan_records):
    """The probe-filtered loop wins in aggregate wall time."""
    summary = plan_records["summary"]
    assert summary["fast_wall_s_total"] < summary["legacy_wall_s_total"]


def test_bench_plan_report(plan_records):
    from conftest import record_report

    rows = [
        "Refine loop on the Exp#2 golden family (wall seconds, best of "
        f"{REPS})",
        f"{'instance':<12} {'legacy s':>9} {'fast s':>8} {'speedup':>8} "
        f"{'A_max':>6}",
    ]
    for record in plan_records["instances"]:
        rows.append(
            f"{record['instance']:<12} "
            f"{record['legacy']['wall_s']:>9.3f} "
            f"{record['fast']['wall_s']:>8.3f} "
            f"{record['speedup']:>7.2f}x "
            f"{record['fast']['amax']:>6}"
        )
    summary = plan_records["summary"]
    rows.append(
        f"total wall: legacy={summary['legacy_wall_s_total']:.3f}s "
        f"fast={summary['fast_wall_s_total']:.3f}s "
        f"(strict wins {summary['strict_speedups']}/{summary['instances']})"
    )
    record_report("\n".join(rows))
    assert os.path.exists(_REPORT_PATH)
