"""Packets as the simulator sees them."""

from __future__ import annotations

from dataclasses import dataclass

#: Ethernet + IPv4 + TCP framing the testbed flows carry regardless of
#: metadata (14 + 20 + 20 bytes).
BASE_HEADER_BYTES = 54


@dataclass(frozen=True)
class Packet:
    """One packet of a flow.

    Attributes:
        flow_id: Owning flow identifier.
        seq: Packet index within the flow (0-based).
        payload_bytes: Application payload carried.
        overhead_bytes: Piggybacked coordination metadata.
        header_bytes: Base protocol framing.
    """

    flow_id: int
    seq: int
    payload_bytes: int
    overhead_bytes: int = 0
    header_bytes: int = BASE_HEADER_BYTES

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.overhead_bytes < 0:
            raise ValueError("overhead_bytes must be non-negative")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")

    @property
    def wire_bytes(self) -> int:
        """Total bytes serialized onto a link."""
        return self.payload_bytes + self.overhead_bytes + self.header_bytes
