"""Mixed-integer linear programming substrate.

The paper solves its deployment problem P#1 with Gurobi.  Offline we
build the same capability from first principles: a small modeling API
(:class:`Model`, :class:`Var`, :class:`LinExpr`, :class:`Constraint`)
and an exact solver — best-first branch & bound over LP relaxations
solved by ``scipy.optimize.linprog`` (HiGHS).

The solver is exact on the model it is given (it proves optimality via
LP bounds), supports binary/integer/continuous variables, <=/>=/==
constraints, minimization and maximization, time limits and incumbent
callbacks.  It is deliberately a general-purpose component: both the
Hermes "Optimal" configuration and every ILP-based baseline build their
models against this API.
"""

from repro.milp.expr import LinExpr
from repro.milp.model import Constraint, Model, Sense, Var, VarType
from repro.milp.solution import Solution, SolveStatus
from repro.milp.branch_bound import BranchBoundSolver, solve

__all__ = [
    "BranchBoundSolver",
    "Constraint",
    "LinExpr",
    "Model",
    "Sense",
    "Solution",
    "SolveStatus",
    "Var",
    "VarType",
    "solve",
]
