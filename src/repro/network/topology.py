"""Network topology: the undirected graph ``G = (V_G, E_G)``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.network.switch import Switch


def _link_key(u: str, v: str) -> Tuple[str, str]:
    """Canonical (sorted) endpoint pair for an undirected link."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Link:
    """An undirected link with transmission latency ``t_l(u, v)``.

    Attributes:
        u, v: Endpoint switch names (stored canonically sorted).
        latency_ms: One-way transmission latency in milliseconds.
        bandwidth_gbps: Link capacity.
    """

    u: str
    v: str
    latency_ms: float = 1.0
    bandwidth_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop link on {self.u!r}")
        if self.latency_ms < 0:
            raise ValueError("link latency must be >= 0")
        if self.bandwidth_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        a, b = _link_key(self.u, self.v)
        object.__setattr__(self, "u", a)
        object.__setattr__(self, "v", b)

    @property
    def latency_us(self) -> float:
        return self.latency_ms * 1000.0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.u, self.v)

    def other(self, name: str) -> str:
        if name == self.u:
            return self.v
        if name == self.v:
            return self.u
        raise KeyError(f"{name!r} is not an endpoint of {self.key}")


class Network:
    """The substrate network.

    Switches are added first, then links between them.  The class keeps
    adjacency for path enumeration and exposes the property accessors
    the optimization framework consumes.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._switches: Dict[str, Switch] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, switch: Switch) -> None:
        if switch.name in self._switches:
            raise ValueError(f"duplicate switch {switch.name!r}")
        self._switches[switch.name] = switch
        self._adj[switch.name] = set()

    def add_link(self, link: Link) -> None:
        for endpoint in (link.u, link.v):
            if endpoint not in self._switches:
                raise KeyError(f"link references unknown switch {endpoint!r}")
        if link.key in self._links:
            raise ValueError(f"duplicate link {link.key}")
        self._links[link.key] = link
        self._adj[link.u].add(link.v)
        self._adj[link.v].add(link.u)

    def connect(
        self,
        u: str,
        v: str,
        latency_ms: float = 1.0,
        bandwidth_gbps: float = 100.0,
    ) -> Link:
        """Convenience: create and add a link."""
        link = Link(u, v, latency_ms, bandwidth_gbps)
        self.add_link(link)
        return link

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def switches(self) -> List[Switch]:
        return list(self._switches.values())

    @property
    def switch_names(self) -> List[str]:
        return list(self._switches)

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def num_switches(self) -> int:
        """``Q = |V_G|``."""
        return len(self._switches)

    @property
    def num_links(self) -> int:
        """``N = |E_G|``."""
        return len(self._links)

    def switch(self, name: str) -> Switch:
        try:
            return self._switches[name]
        except KeyError:
            raise KeyError(
                f"network {self.name!r} has no switch {name!r}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._switches

    def __iter__(self) -> Iterator[Switch]:
        return iter(self._switches.values())

    def link(self, u: str, v: str) -> Link:
        try:
            return self._links[_link_key(u, v)]
        except KeyError:
            raise KeyError(f"no link between {u!r} and {v!r}") from None

    def has_link(self, u: str, v: str) -> bool:
        return _link_key(u, v) in self._links

    def neighbors(self, name: str) -> Set[str]:
        try:
            return set(self._adj[name])
        except KeyError:
            raise KeyError(
                f"network {self.name!r} has no switch {name!r}"
            ) from None

    def degree(self, name: str) -> int:
        return len(self._adj[name])

    def programmable_switches(self) -> List[Switch]:
        """Switches with ``P(u) = 1``."""
        return [s for s in self._switches.values() if s.programmable]

    def programmable_names(self) -> List[str]:
        return [s.name for s in self._switches.values() if s.programmable]

    def is_connected(self) -> bool:
        """Whether the whole graph is one connected component."""
        if not self._switches:
            return True
        start = next(iter(self._switches))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for nxt in self._adj[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return len(seen) == len(self._switches)

    def total_programmable_capacity(self) -> float:
        """Sum of pipeline budgets over all programmable switches."""
        return sum(s.total_capacity for s in self.programmable_switches())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Network({self.name!r}, {self.num_switches} switches, "
            f"{self.num_links} links)"
        )
