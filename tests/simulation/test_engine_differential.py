"""Differential suite: contention engine vs the exact DES.

Fast tier-1 cells prove the contract on a seeded subset of the
(topology x seed) grid; the ``slow``-marked sweep runs the full
matrix (picked up by the scheduled differential-sweep CI job).  The
harness itself is exercised against known-good (batch vs analytic)
and known-bad (overloaded contention vs exact) pairs so a silent
always-pass bug cannot hide.
"""

from __future__ import annotations

import pytest
from differential import (
    TOPOLOGIES,
    ToleranceContract,
    assert_agreement,
    compare,
    spec_grid,
)

from repro.simulation.contention import (
    CONTENTION_FREE_LOAD,
    CONTENTION_REL_TOLERANCE,
    ContentionEngine,
)

#: Loads at or below the structural threshold and at the 1%% contract
#: point named in the engine's documentation.
LOW_LOADS = (0.01, CONTENTION_FREE_LOAD)

CONTRACT = ToleranceContract(
    fct_rel=CONTENTION_REL_TOLERANCE,
    goodput_rel=CONTENTION_REL_TOLERANCE,
)

FAST_CELLS = spec_grid(seeds=(1, 2), num_flows=30)
assert len({label.split("/")[0] for label, _ in FAST_CELLS}) >= 3


class TestContentionVsExact:
    """The headline contract: DES agreement at contention-free load."""

    @pytest.mark.parametrize(
        "label,spec", FAST_CELLS, ids=[l for l, _ in FAST_CELLS]
    )
    @pytest.mark.parametrize("load", LOW_LOADS)
    def test_low_load_matches_exact_des(self, label, spec, load):
        report = assert_agreement(
            "exact", ContentionEngine(load=load), spec, CONTRACT
        )
        # The integer columns must not merely be within tolerance —
        # they are bit-identical by construction.
        for column in report.columns:
            if column.column in ("num_packets", "wire_bytes"):
                assert column.max_delta == 0.0, report.summary()

    @pytest.mark.parametrize(
        "label,spec", FAST_CELLS[:2], ids=[l for l, _ in FAST_CELLS[:2]]
    )
    def test_low_load_waits_are_zero(self, label, spec):
        result = ContentionEngine(load=CONTENTION_FREE_LOAD).evaluate(spec)
        assert result.wait_us is not None
        assert max(result.wait_us) == 0.0
        assert result.contended_fraction == 0.0

    def test_spec_offered_load_drives_the_engine(self):
        [(label, spec)] = spec_grid(
            seeds=(3,), topologies=("uniform5",), num_flows=20,
            offered_load=0.01,
        )
        assert spec.traffic.offered_load == 0.01
        # Engine constructed with no load must pick the spec's up.
        assert_agreement("exact", ContentionEngine(), spec, CONTRACT)


class TestFctInflationMonotoneInLoad:
    """Per-flow FCT never decreases as offered load rises."""

    @pytest.mark.parametrize(
        "label,spec", FAST_CELLS[:3], ids=[l for l, _ in FAST_CELLS[:3]]
    )
    def test_per_flow_fct_monotone(self, label, spec):
        loads = (0.05, 0.3, 0.6, 0.9, 1.2)
        prev = None
        for load in loads:
            fct = ContentionEngine(load=load, seed=0).evaluate(spec).fct_us
            if prev is not None:
                slack = [b - a for a, b in zip(prev, fct)]
                assert min(slack) >= -1e-9 * max(fct), (
                    f"{label}: FCT decreased when load rose to {load}"
                )
            prev = fct

    def test_waits_monotone_too(self):
        [(_, spec)] = spec_grid(
            seeds=(5,), topologies=("uniform5",), num_flows=40
        )
        prev_total = -1.0
        for load in (0.2, 0.5, 0.9):
            waits = ContentionEngine(load=load).evaluate(spec).wait_us
            total = sum(waits)
            assert total >= prev_total
            prev_total = total
        assert prev_total > 0.0  # high load really queues


class TestHarnessSelfChecks:
    """The harness must catch disagreement, not just bless agreement."""

    def test_batch_vs_analytic_through_harness(self):
        for label, spec in FAST_CELLS[:3]:
            assert_agreement("analytic", "batch", spec)

    def test_overloaded_engine_is_flagged(self):
        _, spec = FAST_CELLS[0]
        report = compare("exact", ContentionEngine(load=1.5), spec, CONTRACT)
        assert not report.ok
        failing = {c.column for c in report.failures}
        assert "fct_us" in failing
        # Packetization is load-independent: those columns still agree.
        assert "num_packets" not in failing
        assert "wire_bytes" not in failing

    def test_summary_names_engines_and_verdict(self):
        _, spec = FAST_CELLS[0]
        report = compare("analytic", "batch", spec)
        text = report.summary()
        assert "analytic" in text and "batch" in text
        assert "AGREE" in text

    def test_relaxed_contract_loosens_bounds(self):
        loose = CONTRACT.relaxed(fct_rel=10.0, goodput_rel=10.0)
        _, spec = FAST_CELLS[0]
        report = compare("exact", ContentionEngine(load=1.5), spec, loose)
        assert {c.column for c in report.failures} == set()


@pytest.mark.slow
class TestFullDifferentialMatrix:
    """Scheduled sweep: every topology, more seeds, larger traces.

    Specs are built inside the test so deselected runs (tier-1 runs
    ``-m "not slow"``) pay no WAN-deployment cost at collection time.
    """

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("load", LOW_LOADS)
    def test_matrix_cell(self, topology, seed, load):
        [(label, spec)] = spec_grid(
            seeds=(seed,), topologies=(topology,), num_flows=120,
            max_bytes=256 * 1024,
        )
        assert_agreement(
            "exact", ContentionEngine(load=load), spec, CONTRACT
        )
