"""Benchmark: Fig. 2 — FCT/goodput degradation vs per-packet overhead."""

from repro.experiments import fig2_motivation


def test_bench_fig2_motivation(benchmark):
    rows = benchmark.pedantic(
        fig2_motivation.run, rounds=3, iterations=1
    )
    from conftest import record_report

    record_report(_render(rows))
    # Shape assertions: more overhead -> worse, smaller packets -> worse.
    for size in fig2_motivation.PACKET_SIZES:
        series = [r for r in rows if r.packet_size == size]
        fcts = [r.fct_ratio for r in series]
        assert fcts == sorted(fcts)
    at_108 = {
        r.packet_size: r.fct_ratio
        for r in rows
        if r.overhead_bytes == 108
    }
    assert at_108[512] > at_108[1024] > at_108[1500]


def _render(rows) -> str:
    from repro.experiments.reporting import Table

    table = Table(
        "Fig. 2: normalized FCT / goodput vs overhead",
        ["overhead(B)"]
        + [f"fct@{s}B" for s in fig2_motivation.PACKET_SIZES]
        + [f"gp@{s}B" for s in fig2_motivation.PACKET_SIZES],
    )
    for overhead in fig2_motivation.OVERHEAD_SWEEP:
        per = sorted(
            (r for r in rows if r.overhead_bytes == overhead),
            key=lambda r: r.packet_size,
        )
        table.add_row(
            [overhead]
            + [r.fct_ratio for r in per]
            + [r.goodput_ratio for r in per]
        )
    return table.render()


def test_bench_fig2_des_packet_level(benchmark):
    """The packet-level DES variant (10k packets through 5 hops)."""
    from repro.simulation.flow import Flow
    from repro.simulation.netsim import FlowSimulator, uniform_path

    simulator = FlowSimulator(uniform_path(5))
    flow = Flow(1, message_bytes=1024 * 10_000, packet_payload_bytes=1024,
                overhead_bytes=48)

    metrics = benchmark.pedantic(
        simulator.run, args=(flow,), rounds=3, iterations=1
    )
    assert metrics.num_packets == 10_000
