"""Integration-style tests: every framework deploys valid plans."""

import pytest

from repro.baselines import (
    ALL_FRAMEWORKS,
    Ffl,
    Ffls,
    HermesHeuristic,
    HermesOptimal,
    MinStage,
    Mtp,
    Sonata,
    Speed,
)
from repro.baselines.base import FrameworkResult
from repro.baselines.min_stage import stage_minimizing_order
from repro.core.analyzer import ProgramAnalyzer
from repro.network.generators import linear_topology
from tests.conftest import make_sketch_program


@pytest.fixture(scope="module")
def programs():
    return [make_sketch_program(f"p{i}", index_bytes=2 + i) for i in range(6)]


@pytest.fixture
def network():
    return linear_topology(3, num_stages=4, stage_capacity=1.0)


def framework_instance(cls):
    if cls in (MinStage, Sonata):
        return cls(time_limit_s=2.0)
    if issubclass(cls, Speed) or cls is HermesOptimal:
        return cls(time_limit_s=20.0)
    return cls()


@pytest.mark.parametrize("cls", ALL_FRAMEWORKS, ids=lambda c: c.name)
def test_framework_produces_valid_plan(cls, programs, network):
    framework = framework_instance(cls)
    result = framework.deploy(programs, network)
    assert isinstance(result, FrameworkResult)
    result.plan.validate()
    assert result.framework == cls.name
    assert result.solve_time_s >= 0
    assert len(result.plan.placements) == len(result.tdg)


@pytest.mark.parametrize("cls", ALL_FRAMEWORKS, ids=lambda c: c.name)
def test_framework_overhead_nonnegative(cls, programs, network):
    result = framework_instance(cls).deploy(programs, network)
    assert result.overhead_bytes >= 0


class TestHermesBeatsBaselines:
    def test_hermes_no_worse_than_first_fit(self, programs, network):
        hermes = HermesHeuristic().deploy(programs, network)
        ffl = Ffl().deploy(programs, network)
        ffls = Ffls().deploy(programs, network)
        assert hermes.overhead_bytes <= ffl.overhead_bytes
        assert hermes.overhead_bytes <= ffls.overhead_bytes

    def test_optimal_no_worse_than_heuristic(self, programs, network):
        optimal = HermesOptimal(time_limit_s=30).deploy(programs, network)
        hermes = HermesHeuristic().deploy(programs, network)
        assert optimal.overhead_bytes <= hermes.overhead_bytes


class TestOrderingVariants:
    def test_sonata_sorts_by_demand(self):
        light = make_sketch_program("light", demands=(0.1, 0.1, 0.1))
        heavy = make_sketch_program("heavy", demands=(0.5, 0.5, 0.5))
        ordered = Sonata().program_order([light, heavy])
        assert [p.name for p in ordered] == ["heavy", "light"]

    def test_min_stage_keeps_input_order(self):
        a = make_sketch_program("a")
        b = make_sketch_program("b")
        assert [p.name for p in MinStage().program_order([a, b])] == [
            "a",
            "b",
        ]

    def test_ffls_orders_big_first_within_level(self):
        program = make_sketch_program("p", demands=(0.2, 0.5, 0.3))
        tdg = ProgramAnalyzer(merge=False).analyze([program])
        ffl_order = Ffl().level_order(tdg)
        ffls_order = Ffls().level_order(tdg)
        # Chain: levels are distinct, so both agree here.
        assert ffl_order == ffls_order

    def test_stage_minimizing_order_is_topological(self, programs):
        tdg = ProgramAnalyzer(merge=False).analyze([programs[0]])
        order, timed_out = stage_minimizing_order(tdg, 1.0, 5.0)
        position = {name: i for i, name in enumerate(order)}
        for edge in tdg.edges:
            assert position[edge.upstream] < position[edge.downstream]


class TestMergingBehaviour:
    def test_merging_flags(self):
        assert Speed.merges and Mtp.merges
        assert HermesHeuristic.merges and HermesOptimal.merges
        assert not MinStage.merges and not Ffl.merges

    def test_merging_frameworks_dedup_shared_mats(self, network):
        from repro.workloads.sketches import sketch_programs

        programs = sketch_programs(4)
        merged = HermesHeuristic().deploy(programs, network)
        unmerged = Ffl().deploy(programs, network)
        assert len(merged.tdg) < len(unmerged.tdg)


class TestTimeoutFallbacks:
    def test_speed_fallback_on_impossible_budget(self):
        """A starved ILP budget triggers the objective-consistent
        greedy fallback: a valid plan flagged as timed out."""
        programs = [
            make_sketch_program(f"q{i}", index_bytes=2 + i)
            for i in range(10)
        ]
        network = linear_topology(6, num_stages=4, stage_capacity=1.0)
        result = Speed(time_limit_s=0.05).deploy(programs, network)
        assert result.timed_out
        result.plan.validate()
        assert len(result.plan.placements) == len(result.tdg)

    def test_optimal_fallback_never_worse_than_heuristic(self):
        programs = [
            make_sketch_program(f"q{i}", index_bytes=2 + i)
            for i in range(10)
        ]
        network = linear_topology(6, num_stages=4, stage_capacity=1.0)
        optimal = HermesOptimal(time_limit_s=0.05).deploy(
            programs, network
        )
        heuristic = HermesHeuristic().deploy(programs, network)
        assert optimal.overhead_bytes <= heuristic.overhead_bytes
        optimal.plan.validate()
