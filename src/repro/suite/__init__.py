"""Declarative experiment suites: spec -> compiler -> report.

``repro.suite`` turns the paper's experiment matrix into data.  A
``repro.suite/v1`` document (:mod:`~repro.suite.spec`) names a kind
and its axes; the compiler (:mod:`~repro.suite.compiler`) resolves the
cross-product onto the existing :class:`~repro.experiments.runner
.ExperimentRunner` (content-addressed cache keys per cell, suite/cell
telemetry); aggregators (:mod:`~repro.suite.aggregate`) fold results
into the paper's tables; one versioned
:class:`~repro.suite.report.SuiteReport` carries it all.  exp1-exp7
and fig2 ship as spec files (:mod:`~repro.suite.registry`), locked
byte-for-byte against their pre-refactor outputs by the golden tests.
"""

from repro.suite.compiler import (
    FRAMEWORK_REGISTRY,
    build_frameworks,
    cell_plan,
    deployment_cells,
    run_suite,
)
from repro.suite.report import REPORT_VERSION, SuiteReport
from repro.suite.registry import (
    load_spec,
    shipped_specs,
    spec_names,
    spec_path,
)
from repro.suite.spec import (
    SUITE_VERSION,
    AxisEntry,
    SuiteSpec,
    SuiteSpecError,
)

__all__ = [
    "AxisEntry",
    "FRAMEWORK_REGISTRY",
    "REPORT_VERSION",
    "SUITE_VERSION",
    "SuiteReport",
    "SuiteSpec",
    "SuiteSpecError",
    "build_frameworks",
    "cell_plan",
    "deployment_cells",
    "load_spec",
    "run_suite",
    "shipped_specs",
    "spec_names",
    "spec_path",
]
