"""Topology generators.

Three generators cover the paper's settings:

* :func:`linear_topology` — the 3-switch Tofino testbed (Exp#1) and the
  2-port loopback setup of the motivation experiment;
* :func:`fat_tree` — the canonical DCN topology referenced in §II;
* :func:`random_wan` — seeded random connected WANs with the paper's
  property distribution (50% programmable switches, ``t_s = 1 µs``,
  ``t_l`` uniform in 1–10 ms).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.switch import (
    DEFAULT_NUM_STAGES,
    DEFAULT_STAGE_CAPACITY,
    Switch,
)
from repro.network.topology import Network

#: Paper settings (§VI-A): switch latency 1 µs, link latency 1–10 ms.
WAN_SWITCH_LATENCY_US = 1.0
WAN_LINK_LATENCY_RANGE_MS = (1.0, 10.0)
WAN_PROGRAMMABLE_FRACTION = 0.5


def linear_topology(
    num_switches: int = 3,
    programmable: bool = True,
    link_latency_ms: float = 0.001,
    num_stages: int = DEFAULT_NUM_STAGES,
    stage_capacity: float = DEFAULT_STAGE_CAPACITY,
    name: str = "linear",
) -> Network:
    """A chain ``s0 - s1 - ... - s{n-1}`` of identical switches.

    Defaults model the testbed: Tofino switches joined by short 100 Gbps
    links (1 µs link latency).
    """
    if num_switches <= 0:
        raise ValueError("need at least one switch")
    net = Network(name)
    for i in range(num_switches):
        net.add_switch(
            Switch(
                f"s{i}",
                programmable=programmable,
                num_stages=num_stages,
                stage_capacity=stage_capacity,
            )
        )
    for i in range(num_switches - 1):
        net.connect(f"s{i}", f"s{i + 1}", latency_ms=link_latency_ms)
    return net


def fat_tree(k: int = 4, name: Optional[str] = None) -> Network:
    """A ``k``-ary fat-tree (k even): core, aggregation and edge layers.

    Edge and aggregation switches are programmable; core switches are
    fixed-function, reflecting deployments that upgrade the lower tiers
    first.
    """
    if k < 2 or k % 2:
        raise ValueError("fat-tree arity k must be a positive even number")
    net = Network(name or f"fat_tree_k{k}")
    half = k // 2
    num_core = half * half

    core = [f"core{i}" for i in range(num_core)]
    for c in core:
        net.add_switch(Switch(c, programmable=False))
    for pod in range(k):
        aggs = [f"pod{pod}_agg{i}" for i in range(half)]
        edges = [f"pod{pod}_edge{i}" for i in range(half)]
        for a in aggs:
            net.add_switch(Switch(a, programmable=True))
        for e in edges:
            net.add_switch(Switch(e, programmable=True))
        for a in aggs:
            for e in edges:
                net.connect(a, e, latency_ms=0.001)
        for i, a in enumerate(aggs):
            for j in range(half):
                net.connect(a, core[i * half + j], latency_ms=0.001)
    return net


def random_wan(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    programmable_fraction: float = WAN_PROGRAMMABLE_FRACTION,
    num_stages: int = DEFAULT_NUM_STAGES,
    stage_capacity: float = DEFAULT_STAGE_CAPACITY,
    name: Optional[str] = None,
) -> Network:
    """A seeded random connected WAN with the paper's property settings.

    Construction: a random spanning tree guarantees connectivity, then
    extra random edges are added up to ``num_edges``.  A random 50%
    (by default) of switches are made programmable with Tofino-like
    stage counts; link latencies are uniform in 1–10 ms.

    Args:
        num_nodes: ``|V_G|``.
        num_edges: ``|E_G|``; must be at least ``num_nodes - 1`` and at
            most the complete-graph edge count.
        seed: RNG seed — same seed, same topology.
        programmable_fraction: Fraction of programmable switches; at
            least one switch is always programmable.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    min_edges = max(num_nodes - 1, 0)
    max_edges = num_nodes * (num_nodes - 1) // 2
    if not min_edges <= num_edges <= max_edges:
        raise ValueError(
            f"num_edges must be in [{min_edges}, {max_edges}] for "
            f"{num_nodes} nodes, got {num_edges}"
        )
    rng = random.Random(seed)
    net = Network(name or f"wan_{num_nodes}n_{num_edges}e_seed{seed}")

    names = [f"w{i}" for i in range(num_nodes)]
    num_prog = max(1, round(num_nodes * programmable_fraction))
    programmable = set(rng.sample(names, num_prog))
    for node in names:
        net.add_switch(
            Switch(
                node,
                programmable=node in programmable,
                num_stages=num_stages,
                stage_capacity=stage_capacity,
                latency_us=WAN_SWITCH_LATENCY_US,
            )
        )

    def _latency() -> float:
        lo, hi = WAN_LINK_LATENCY_RANGE_MS
        return rng.uniform(lo, hi)

    # Random spanning tree (random-order Prim): connect each new node to
    # a random already-connected node.
    shuffled = names[:]
    rng.shuffle(shuffled)
    connected = [shuffled[0]]
    for node in shuffled[1:]:
        peer = rng.choice(connected)
        net.connect(node, peer, latency_ms=_latency())
        connected.append(node)

    # Extra edges.
    attempts = 0
    while net.num_links < num_edges:
        u, v = rng.sample(names, 2)
        if not net.has_link(u, v):
            net.connect(u, v, latency_ms=_latency())
        attempts += 1
        if attempts > 100 * num_edges:  # pragma: no cover - safety valve
            raise RuntimeError("edge sampling failed to converge")
    return net
