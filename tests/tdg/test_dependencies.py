"""Unit tests for dependency classification (M/A/R/S)."""

from repro.dataplane.actions import Action, ActionPrimitive, modify, no_op
from repro.dataplane.fields import header_field, metadata_field
from repro.dataplane.mat import Mat
from repro.tdg.dependencies import DependencyType, classify_dependency


IDX = metadata_field("m.idx", 32)
VAL = metadata_field("m.val", 32)
HDR = header_field("ipv4.src", 32)


def writer(field, name="w"):
    return Mat(name, actions=[modify(field)])


def matcher(field, name="r"):
    return Mat(name, match_fields=[field], actions=[no_op()])


class TestClassification:
    def test_match_dependency(self):
        assert (
            classify_dependency(writer(IDX), matcher(IDX))
            is DependencyType.MATCH
        )

    def test_match_dependency_via_action_read(self):
        consumer = Mat(
            "c",
            actions=[
                Action(
                    "use",
                    ActionPrimitive.MODIFY_FIELD,
                    reads=(IDX,),
                    writes=(VAL,),
                )
            ],
        )
        assert (
            classify_dependency(writer(IDX), consumer)
            is DependencyType.MATCH
        )

    def test_action_dependency(self):
        assert (
            classify_dependency(writer(IDX, "a"), writer(IDX, "b"))
            is DependencyType.ACTION
        )

    def test_reverse_dependency(self):
        assert (
            classify_dependency(matcher(IDX), writer(IDX))
            is DependencyType.REVERSE
        )

    def test_successor_dependency(self):
        gate = writer(VAL, "gate")
        gated = matcher(HDR, "gated")
        assert (
            classify_dependency(gate, gated, conditional=True)
            is DependencyType.SUCCESSOR
        )

    def test_independent_mats(self):
        assert classify_dependency(writer(IDX), matcher(HDR)) is None

    def test_match_beats_action(self):
        # downstream both matches and writes the field upstream wrote
        both = Mat("b", match_fields=[IDX], actions=[modify(IDX)])
        assert (
            classify_dependency(writer(IDX), both) is DependencyType.MATCH
        )

    def test_action_beats_successor(self):
        assert (
            classify_dependency(
                writer(IDX, "a"), writer(IDX, "b"), conditional=True
            )
            is DependencyType.ACTION
        )

    def test_successor_beats_reverse(self):
        assert (
            classify_dependency(matcher(IDX), writer(IDX), conditional=True)
            is DependencyType.SUCCESSOR
        )


class TestMetadataCarrying:
    def test_reverse_carries_nothing(self):
        assert not DependencyType.REVERSE.carries_metadata

    def test_others_carry(self):
        for dep in (
            DependencyType.MATCH,
            DependencyType.ACTION,
            DependencyType.SUCCESSOR,
        ):
            assert dep.carries_metadata
