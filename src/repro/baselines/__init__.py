"""Comparison frameworks (§VI-A).

Every framework implements the common
:class:`~repro.baselines.base.DeploymentFramework` interface so the
experiment harness can sweep them uniformly:

ILP-based (first class, solved by the same branch & bound engine):

* ``MinStage`` — single-switch stage-minimizing deployment, extended to
  place programs on a switch chain one by one;
* ``Sonata`` — like MinStage but schedules the most resource-hungry
  programs first (query-cost ordering);
* ``Speed`` — network-wide deployment with TDG merging, optimizing
  packet-processing performance (end-to-end latency);
* ``Mtp`` — SPEED plus a per-switch MAT cap to avoid control-plane
  overload;
* ``Flightplan`` — program disaggregation across devices, minimizing
  the number of devices used (no cross-program merging);
* ``P4All`` — modular per-program deployment optimizing latency (no
  cross-program merging);
* ``HermesOptimal`` — the paper's "Optimal": P#1 solved exactly.

Heuristic (second class):

* ``Ffl`` / ``Ffls`` — first fit by level (and size) over the chain of
  programmable switches;
* ``HermesHeuristic`` — Algorithm 2.

None of the baselines optimizes the per-packet byte overhead — that is
the paper's point — so all of them are expected to produce larger
``A_max`` than Hermes.
"""

from repro.baselines.base import (
    DeploymentFramework,
    FrameworkResult,
    build_switch_chain,
    schedule_on_chain,
)
from repro.baselines.min_stage import MinStage
from repro.baselines.sonata import Sonata
from repro.baselines.ffl import Ffl
from repro.baselines.ffls import Ffls
from repro.baselines.speed import Speed
from repro.baselines.mtp import Mtp
from repro.baselines.flightplan import Flightplan
from repro.baselines.p4all import P4All
from repro.baselines.hermes_adapters import HermesHeuristic, HermesOptimal

#: Frameworks in the order the paper's figures list them.
ALL_FRAMEWORKS = (
    MinStage,
    Sonata,
    Speed,
    Mtp,
    Flightplan,
    P4All,
    Ffl,
    Ffls,
    HermesHeuristic,
    HermesOptimal,
)

__all__ = [
    "ALL_FRAMEWORKS",
    "DeploymentFramework",
    "Ffl",
    "Ffls",
    "Flightplan",
    "FrameworkResult",
    "HermesHeuristic",
    "HermesOptimal",
    "MinStage",
    "Mtp",
    "P4All",
    "Sonata",
    "Speed",
    "build_switch_chain",
    "schedule_on_chain",
]
