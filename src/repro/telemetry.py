"""Lightweight process-local event bus.

Instrumented code (the branch & bound solver, the deployment framework
interface) calls :func:`emit` at interesting moments; by default that is
a no-op costing one attribute lookup.  A caller who wants the events —
the experiment runner's journal, a test, an ad-hoc profiler — attaches a
*sink* (any callable taking one ``dict``) around the code under
observation:

    rec = Recorder()
    with attached(rec):
        solver.solve(model)
    assert rec.count("solver.lp") == solution.lp_solves

Sinks are context-local (:class:`contextvars.ContextVar`), so
concurrently running solves never interleave their event streams —
whether they run in worker threads (each thread executes in its own
context) or as asyncio tasks multiplexed on one event loop (the loop
copies the context per task, so two server sessions awaiting on the
same loop keep separate sinks).  Worker *processes* each carry their
own bus; the experiment runner collects their recorded events through
the task return value and serializes them into the per-run journal in
deterministic order.

The bus deliberately lives outside :mod:`repro.experiments` so that the
low-level layers (``repro.milp``, ``repro.baselines``) can emit without
depending on the experiment machinery.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional

#: A telemetry event: ``{"kind": <str>, **payload}``.
Event = Dict[str, Any]
Sink = Callable[[Event], None]

#: The attached sink of the current execution context.  A ContextVar
#: behaves exactly like the historical ``threading.local`` for plain
#: threads (each thread starts unset and sees only its own
#: attachments) but additionally follows asyncio tasks: the event loop
#: runs every task in a copy of its spawning context, so sinks never
#: leak between tasks sharing one loop thread.
_sink_var: ContextVar[Optional[Sink]] = ContextVar(
    "repro.telemetry.sink", default=None
)


def current_sink() -> Optional[Sink]:
    """The sink attached to this context, or None."""
    return _sink_var.get()


def emit(kind: str, **payload: Any) -> None:
    """Send one event to the attached sink (no-op without a sink)."""
    sink = _sink_var.get()
    if sink is None:
        return
    event: Event = {"kind": kind}
    event.update(payload)
    sink(event)


@contextmanager
def attached(sink: Sink) -> Iterator[Sink]:
    """Attach ``sink`` as this context's event sink for the block.

    Nested attachments stack: the innermost sink wins and the previous
    one is restored on exit.
    """
    token = _sink_var.set(sink)
    try:
        yield sink
    finally:
        _sink_var.reset(token)


def tee(*sinks: Sink) -> Sink:
    """A sink that forwards every event to each of ``sinks`` in order.

    Lets one block feed a journal and a recorder at once:

        with attached(tee(journal_sink, recorder)):
            reconciler.run(scenario)
    """

    def _fanout(event: Event) -> None:
        for sink in sinks:
            sink(event)

    return _fanout


class Recorder:
    """A sink that keeps every event in order of emission."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.get("kind") == kind)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.get("kind") == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
