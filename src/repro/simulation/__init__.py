"""End-to-end transmission simulation.

The paper's motivation (§II-B, Fig. 2) and end-to-end experiments
(Exp#1/#4/#5) measure how the per-packet byte overhead degrades flow
completion time (FCT) and goodput: metadata steals payload bytes from
the MTU, so applications need more packets — and more wire bytes — per
message.

This package provides both:

* a discrete-event, store-and-forward flow simulator
  (:class:`FlowSimulator`) that transmits every packet hop by hop; and
* a closed-form model (:func:`analytic_fct`) of the same pipeline,
  cross-checked against the simulator in the test suite and used by
  the large parameter sweeps.
"""

from repro.simulation.events import EventQueue, Simulator
from repro.simulation.packet import Packet
from repro.simulation.flow import (
    Flow,
    MIN_PAYLOAD_BYTES,
    flow_pair,
    packetize,
    widened_mtu,
)
from repro.simulation.netsim import (
    FlowSimulator,
    HopSpec,
    analytic_fct,
    uniform_path,
)
from repro.simulation.spec import (
    DiurnalLoad,
    FlowSpec,
    SimulationSpec,
    TrafficModel,
    hop_chain,
)
from repro.simulation.engine import (
    AnalyticEngine,
    BatchEngine,
    Engine,
    EngineUnavailableError,
    ExactEngine,
    SimulationResult,
    get_engine,
    overhead_impact,
)
from repro.simulation.contention import (
    CONTENTION_FREE_LOAD,
    CONTENTION_REL_TOLERANCE,
    DEFAULT_LOAD,
    ContentionEngine,
    congested_overhead_impact,
)
from repro.simulation.metrics import FlowMetrics, normalized_against
from repro.simulation.traces import (
    TraceConfig,
    TraceFlow,
    TraceMetrics,
    evaluate_trace,
    generate_trace,
)
from repro.simulation.interpreter import (
    ExecutionTrace,
    MissingMetadataError,
    PlanInterpreter,
)

__all__ = [
    "AnalyticEngine",
    "BatchEngine",
    "CONTENTION_FREE_LOAD",
    "CONTENTION_REL_TOLERANCE",
    "ContentionEngine",
    "DEFAULT_LOAD",
    "Engine",
    "EngineUnavailableError",
    "EventQueue",
    "ExactEngine",
    "ExecutionTrace",
    "Flow",
    "FlowMetrics",
    "FlowSimulator",
    "DiurnalLoad",
    "FlowSpec",
    "HopSpec",
    "MIN_PAYLOAD_BYTES",
    "MissingMetadataError",
    "Packet",
    "PlanInterpreter",
    "SimulationResult",
    "SimulationSpec",
    "Simulator",
    "TraceConfig",
    "TraceFlow",
    "TraceMetrics",
    "TrafficModel",
    "analytic_fct",
    "congested_overhead_impact",
    "evaluate_trace",
    "flow_pair",
    "generate_trace",
    "get_engine",
    "hop_chain",
    "normalized_against",
    "overhead_impact",
    "packetize",
    "uniform_path",
    "widened_mtu",
]
