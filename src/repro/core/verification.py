"""Dataflow verification of deployment plans.

``DeploymentPlan.validate()`` checks the paper's structural constraints
(placement coverage, stage capacity, ordering, routing).  This module
goes further and verifies Goal#2 — *correctness of packet processing* —
by symbolically executing the deployment:

* a MAT may execute once all its TDG predecessors have executed, and
  every metadata field it reads is *available* at its switch: written
  earlier by a same-switch MAT, or delivered by a coordination channel
  whose source switch already produced it;
* a coordination channel may only ship fields its source actually
  produced.

Switch-level metadata flow may be cyclic (the paper's constraint (7)
only demands a path per dependency; real deployments resolve cycles by
routing the packet through a switch more than once).  The verifier
therefore runs to a fixpoint over *rounds*: each round corresponds to
one traversal of the occupied switches, and the number of rounds needed
is reported — a plan needing ``k`` rounds requires ``k - 1``
recirculations through part of the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.coordination import CoordinationAnalysis
from repro.core.deployment import DeploymentPlan


class DataflowError(AssertionError):
    """The plan cannot deliver some MAT's inputs, ever."""


@dataclass
class DataflowReport:
    """Outcome of a dataflow verification.

    Attributes:
        rounds: Network traversals needed until every MAT could run
            (1 = a single pass suffices; more means recirculation).
        reads_checked: Metadata reads verified.
        shipped_fields: Per channel, the field names it carries.
        execution_order: MATs in the order the symbolic execution ran
            them.
    """

    rounds: int
    reads_checked: int
    shipped_fields: Dict[Tuple[str, str], List[str]] = field(
        default_factory=dict
    )
    execution_order: List[str] = field(default_factory=list)

    @property
    def single_pass(self) -> bool:
        """Whether one traversal (no recirculation) suffices."""
        return self.rounds <= 1


def _visit_order(plan: DeploymentPlan) -> List[str]:
    """Occupied switches ordered along the metadata flow.

    A topological order of the channel graph lets acyclic deployments
    complete in a single pass; switches stuck in flow cycles are
    appended in stable order and resolved by extra rounds.
    """
    occupied = plan.occupied_switches()
    succ: Dict[str, Set[str]] = {s: set() for s in occupied}
    in_deg: Dict[str, int] = {s: 0 for s in occupied}
    for (u, v) in plan.pair_metadata_bytes():
        if v not in succ[u]:
            succ[u].add(v)
            in_deg[v] += 1
    ready = [s for s in occupied if in_deg[s] == 0]
    order: List[str] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        for nxt in sorted(succ[current]):
            in_deg[nxt] -= 1
            if in_deg[nxt] == 0:
                ready.append(nxt)
    order.extend(s for s in occupied if s not in order)
    return order


def verify_dataflow(plan: DeploymentPlan) -> DataflowReport:
    """Symbolically execute the plan; raise if any input is undeliverable.

    Raises:
        DataflowError: If the execution reaches a fixpoint with MATs
            whose inputs can never arrive (missing channel or missing
            producer), or if a channel ships fields its source cannot
            produce.
    """
    coordination = CoordinationAnalysis(plan)
    tdg = plan.tdg
    occupied = _visit_order(plan)

    channel_fields: Dict[Tuple[str, str], Set[str]] = {
        pair: {f.name for f, _off in channel.layout}
        for pair, channel in coordination.channels.items()
    }
    # Writers of each metadata field, with their host switch.
    writers: Dict[str, List[Tuple[str, str]]] = {}
    for mat in tdg.mats:
        host = plan.switch_of(mat.name)
        for fld in mat.modified_fields.metadata_only():
            writers.setdefault(fld.name, []).append((mat.name, host))

    executed: Set[str] = set()
    ever_produced_on: Dict[str, Set[str]] = {s: set() for s in occupied}
    arrived_on: Dict[str, Set[str]] = {s: set() for s in occupied}
    execution_order: List[str] = []
    reads_checked = 0
    rounds = 0

    total = len(tdg.node_names)
    while len(executed) < total:
        rounds += 1
        progress = False
        for switch in occupied:
            # One *visit*: pipeline metadata starts from whatever the
            # piggyback headers delivered; fields produced in an
            # earlier visit of this same switch are gone — exactly the
            # hardware's PHV semantics the interpreter implements.
            visit_fields: Set[str] = set(arrived_on[switch])

            def try_execute(mat_name: str) -> bool:
                nonlocal reads_checked
                if any(
                    p not in executed
                    for p in tdg.predecessors(mat_name)
                ):
                    return False
                mat = tdg.node(mat_name)
                for fld in mat.read_fields:
                    if not fld.is_metadata:
                        continue
                    if fld.name not in writers:
                        continue  # parser constant, not coordination
                    reads_checked += 1
                    if fld.name not in visit_fields:
                        reads_checked -= 1  # retried next visit
                        return False
                return True

            for mat_name in plan.mats_on(switch):
                if mat_name in executed:
                    continue
                if not try_execute(mat_name):
                    continue
                executed.add(mat_name)
                execution_order.append(mat_name)
                progress = True
                mat = tdg.node(mat_name)
                produced = mat.modified_fields.metadata_only().names
                visit_fields |= produced
                ever_produced_on[switch] |= produced
                # Ship per field: piggyback headers carry whatever
                # values exist when the packet leaves this visit.
                for (u, v), names in channel_fields.items():
                    if u == switch:
                        arrived_on[v] |= names & visit_fields
        if not progress:
            stuck = sorted(set(tdg.node_names) - executed)
            raise DataflowError(
                f"deployment cannot make progress; stuck MATs: {stuck}"
            )
    produced_on = ever_produced_on

    # Channel sanity: everything shipped must have a producer on the
    # source switch.
    shipped: Dict[Tuple[str, str], List[str]] = {}
    for (u, v), names in channel_fields.items():
        missing = sorted(names - produced_on[u])
        if missing:
            raise DataflowError(
                f"channel {u!r}->{v!r} ships fields its source never "
                f"produced: {missing}"
            )
        shipped[(u, v)] = sorted(names)

    return DataflowReport(
        rounds=rounds,
        reads_checked=reads_checked,
        shipped_fields=shipped,
        execution_order=execution_order,
    )
